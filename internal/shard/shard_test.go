package shard_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"neurocard/internal/exec"
	"neurocard/internal/query"
	"neurocard/internal/schema"
	"neurocard/internal/shard"
	"neurocard/internal/table"
	"neurocard/internal/value"
)

// chain builds the paper's A—B—C running example with known join-key
// distributions, so every manifest statistic can be checked by hand:
// |A ⋈ B| = 5, |B ⋈ C| = 2, |A ⋈ B ⋈ C| = 4.
func chain(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{
		{Name: "x", Kind: value.KindInt},
		{Name: "year", Kind: value.KindInt},
	})
	a.MustAppend(value.Int(1), value.Int(1990))
	a.MustAppend(value.Int(2), value.Int(2000))
	a.MustAppend(value.Int(2), value.Null)
	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))
	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func buildChainManifest(t *testing.T, parts [][]string) *shard.Manifest {
	t.Helper()
	m, err := shard.Build(chain(t), "m", parts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildStats(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	if len(m.Shards) != 2 || m.Shards[0].Name != "m-s0" || m.Shards[1].Name != "m-s1" {
		t.Fatalf("shards = %+v", m.Shards)
	}
	if len(m.Edges) != 2 {
		t.Fatalf("edges = %+v", m.Edges)
	}
	byChild := make(map[string]shard.EdgeStat)
	for _, e := range m.Edges {
		byChild[e.RightTable] = e
	}
	ab := byChild["B"]
	if ab.JoinRows != 5 || ab.LeftRows != 3 || ab.RightRows != 3 || ab.LeftDistinct != 2 || ab.RightDistinct != 2 {
		t.Fatalf("A-B stats = %+v", ab)
	}
	bc := byChild["C"]
	if bc.JoinRows != 2 || bc.LeftRows != 3 || bc.RightRows != 3 || bc.LeftDistinct != 3 || bc.RightDistinct != 2 {
		t.Fatalf("B-C stats = %+v", bc)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	path := filepath.Join(t.TempDir(), "m.manifest.json")
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := shard.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Logical != "m" || len(got.Shards) != 2 || len(got.Edges) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Shards[0].Checkpoint != "m-s0.ckpt" {
		t.Fatalf("checkpoint = %q", got.Shards[0].Checkpoint)
	}
}

func TestManifestValidate(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	bad := *m
	bad.Shards = append([]shard.Spec(nil), m.Shards...)
	bad.Shards[1].Tables = []string{"A", "C"} // disconnected within the shard
	if err := bad.Validate(); err == nil {
		t.Fatal("disconnected shard validated")
	}
	bad = *m
	bad.Version = 99
	if err := bad.Validate(); err == nil {
		t.Fatal("future version validated")
	}
	bad = *m
	bad.Shards = []shard.Spec{m.Shards[0], m.Shards[0]}
	if err := bad.Validate(); err == nil {
		t.Fatal("duplicate shard name validated")
	}
}

func TestPlanSingleShard(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	pl, err := shard.NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(query.Query{Tables: []string{"A", "B"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subs) != 1 || p.Subs[0].Shard != "m-s0" || p.Factor != 1 || len(p.Crossings) != 0 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPlanCrossShard(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	pl, err := shard.NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	q := query.Query{
		Tables: []string{"A", "B", "C"},
		Filters: []query.Filter{
			{Table: "A", Col: "year", Op: query.OpGe, Val: value.Int(1990)},
			{Table: "C", Col: "y", Op: query.OpEq, Val: value.Int(3)},
		},
	}
	p, err := pl.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subs) != 2 || len(p.Crossings) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Subs[0].Shard != "m-s0" || len(p.Subs[0].Query.Tables) != 2 || len(p.Subs[0].Query.Filters) != 1 {
		t.Fatalf("sub 0 = %+v", p.Subs[0])
	}
	if p.Subs[1].Shard != "m-s1" || len(p.Subs[1].Query.Filters) != 1 {
		t.Fatalf("sub 1 = %+v", p.Subs[1])
	}
	// Crossed B—C edge: J/(N_B · N_C) = 2/9.
	if want := 2.0 / 9.0; math.Abs(p.Factor-want) > 1e-15 {
		t.Fatalf("factor = %g, want %g", p.Factor, want)
	}
	if p.Crossings[0].Independent {
		t.Fatal("crossing used independence fallback despite recorded stats")
	}
}

// TestCombineUnfilteredExact is the combiner's exactness property: with
// exact sub-estimates and no filters on the crossed edge's endpoints, a
// two-table cross-shard estimate reproduces the true join size.
func TestCombineUnfilteredExact(t *testing.T) {
	sch := chain(t)
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	pl, err := shard.NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(query.Query{Tables: []string{"B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	est := p.Factor
	for _, sub := range p.Subs {
		card, err := exec.Cardinality(sch, sub.Query)
		if err != nil {
			t.Fatal(err)
		}
		est *= card
	}
	truth, err := exec.Cardinality(sch, query.Query{Tables: []string{"B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-truth) > 1e-9 {
		t.Fatalf("composed = %g, true = %g", est, truth)
	}
}

func TestPlanIndependenceFallback(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	for i := range m.Edges {
		m.Edges[i].JoinRows = 0 // stats lost: combiner must degrade, not fail
	}
	pl, err := shard.NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(query.Query{Tables: []string{"B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Crossings[0].Independent {
		t.Fatal("crossing not marked independent")
	}
	// 1/max(distinct(B.y)=3, distinct(C.y)=2) = 1/3.
	if want := 1.0 / 3.0; math.Abs(p.Factor-want) > 1e-15 {
		t.Fatalf("factor = %g, want %g", p.Factor, want)
	}
}

func TestPlanRejects(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	pl, err := shard.NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []query.Query{
		{Tables: []string{"A", "C"}}, // disconnected
		{Tables: []string{"A", "A"}}, // duplicate
		{Tables: []string{"D"}},      // unknown
		{},                           // empty
		{Tables: []string{"A"}, Filters: []query.Filter{{Table: "B", Col: "x", Op: query.OpEq, Val: value.Int(1)}}},
	} {
		if _, err := pl.Plan(q); err == nil {
			t.Fatalf("query %v planned", q)
		}
	}
}

// TestPlanOverlapSmallestCover: with overlapping shards, a query fully
// covered by one shard must route to that single shard even when its
// tables' "first" owners differ.
func TestPlanOverlapSmallestCover(t *testing.T) {
	m := buildChainManifest(t, [][]string{{"A", "B"}, {"C"}})
	m.Shards[1].Tables = []string{"B", "C"} // overlap on B
	pl, err := shard.NewPlanner(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pl.Plan(query.Query{Tables: []string{"B", "C"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Subs) != 1 || p.Subs[0].Shard != "m-s1" || p.Factor != 1 {
		t.Fatalf("plan = %+v", p)
	}
}

func TestPartition(t *testing.T) {
	sch := chain(t)
	parts, err := shard.Partition(sch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 2 {
		t.Fatalf("parts = %v", parts)
	}
	seen := make(map[string]int)
	for _, part := range parts {
		if err := sch.ValidateQuerySet(part); err != nil {
			t.Fatalf("part %v: %v", part, err)
		}
		for _, tbl := range part {
			seen[tbl]++
		}
	}
	for _, tbl := range sch.Tables() {
		if seen[tbl] != 1 {
			t.Fatalf("table %q in %d parts", tbl, seen[tbl])
		}
	}
	if _, err := shard.Partition(sch, 4); err == nil {
		t.Fatal("partitioned 3 tables into 4 parts")
	}
}

func TestManifestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.manifest.json")
	if err := os.WriteFile(path, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shard.Load(path); err == nil {
		t.Fatal("garbage manifest loaded")
	}
}
