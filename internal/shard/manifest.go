// Package shard implements sharded multi-estimator serving: a large join
// schema is partitioned into connected sub-schemas ("shards"), one density
// model is trained per shard, and full-schema queries are answered by
// routing each query to the smallest covering set of shard models and
// combining their estimates across the join edges that cross shard
// boundaries (the Scardina/Glue architecture from PAPERS.md).
//
// The combiner math, for a connected query Q split into per-shard
// sub-queries Q_1..Q_k over a tree schema: contracting the sub-queries
// collapses Q's join tree into a tree whose k-1 edges are exactly the
// schema edges crossed between sub-queries, so
//
//	est(Q) = ∏_i est_i(Q_i) × ∏_{crossed edge e=(P.c, C.c')} J_e / (N_P · N_C)
//
// where J_e = |P ⋈_e C| is the unfiltered two-table join size and N_P, N_C
// the key-bearing (non-NULL) row counts of the endpoint tables. The factor
// is the expected join connectivity under the approximation that filters
// are independent of the join-key distribution; with no filters on P and C
// the two-table estimate reduces to J_e exactly. When a crossed edge has no
// recorded statistics the combiner falls back to key independence,
// 1/max(distinct keys), and finally 1/max(rows).
//
// All cross-edge statistics are computed offline at manifest-build time and
// persisted in the manifest next to the shard checkpoints, so serving never
// touches base data.
package shard

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ManifestVersion is the current manifest file format version.
const ManifestVersion = 1

// Spec describes one shard model of a logical model: the connected table
// subset its density model covers and the checkpoint file serving it
// (relative to the manifest's directory).
type Spec struct {
	Name       string   `json:"name"`
	Checkpoint string   `json:"checkpoint,omitempty"`
	Tables     []string `json:"tables"`
}

// EdgeStat is one join edge of the full schema plus the offline statistics
// the combiner needs when the edge is crossed between two sub-queries.
// JoinRows is the unfiltered inner-join size |L ⋈ R|; LeftRows/RightRows
// count rows whose join key is non-NULL (NULL keys never join);
// LeftDistinct/RightDistinct count distinct non-NULL key values, feeding
// the independence fallback when JoinRows is unavailable.
type EdgeStat struct {
	LeftTable  string `json:"left_table"`
	LeftCol    string `json:"left_col"`
	RightTable string `json:"right_table"`
	RightCol   string `json:"right_col"`

	JoinRows      float64 `json:"join_rows,omitempty"`
	LeftRows      float64 `json:"left_rows,omitempty"`
	RightRows     float64 `json:"right_rows,omitempty"`
	LeftDistinct  float64 `json:"left_distinct,omitempty"`
	RightDistinct float64 `json:"right_distinct,omitempty"`
}

// Manifest is the persisted description of a logical model: which tables
// each shard model covers plus the full schema's edge list with combiner
// statistics. It lives next to the shard checkpoints as
// <logical>.manifest.json and is self-contained — the planner needs no
// access to the schema or base data.
type Manifest struct {
	Version int        `json:"version"`
	Logical string     `json:"logical"`
	Shards  []Spec     `json:"shards"`
	Edges   []EdgeStat `json:"edges"`
}

// ManifestPath returns the conventional manifest location for a logical
// model name under a models directory.
func ManifestPath(dir, logical string) string {
	return filepath.Join(dir, logical+".manifest.json")
}

// Load reads and validates a manifest file.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard: load manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("shard: manifest %s: %w", path, err)
	}
	return &m, nil
}

// Write atomically persists the manifest: a temp file in the target
// directory renamed into place, so a crash mid-write never leaves a torn
// manifest where a daemon restart would pick it up.
func (m *Manifest) Write(path string) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Tables returns the distinct tables covered by any shard, sorted.
func (m *Manifest) Tables() []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range m.Shards {
		for _, t := range s.Tables {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	sort.Strings(out)
	return out
}

// ShardNames returns the shard model names in manifest order.
func (m *Manifest) ShardNames() []string {
	out := make([]string, len(m.Shards))
	for i, s := range m.Shards {
		out[i] = s.Name
	}
	return out
}

// Validate checks structural invariants: a supported version, at least one
// shard, unique shard names and per-shard table lists, edges referencing
// covered tables only, and each shard's induced edge set connecting its
// tables (shard models are trained on connected sub-schemas, so a
// disconnected spec could never be served).
func (m *Manifest) Validate() error {
	if m.Version != ManifestVersion {
		return fmt.Errorf("unsupported manifest version %d (want %d)", m.Version, ManifestVersion)
	}
	if m.Logical == "" {
		return fmt.Errorf("manifest names no logical model")
	}
	if len(m.Shards) == 0 {
		return fmt.Errorf("manifest %q lists no shards", m.Logical)
	}
	covered := make(map[string]bool)
	names := make(map[string]bool, len(m.Shards))
	for i, s := range m.Shards {
		if s.Name == "" {
			return fmt.Errorf("shard %d has no name", i)
		}
		if names[s.Name] {
			return fmt.Errorf("duplicate shard name %q", s.Name)
		}
		names[s.Name] = true
		if len(s.Tables) == 0 {
			return fmt.Errorf("shard %q covers no tables", s.Name)
		}
		inShard := make(map[string]bool, len(s.Tables))
		for _, t := range s.Tables {
			if inShard[t] {
				return fmt.Errorf("shard %q lists table %q twice", s.Name, t)
			}
			inShard[t] = true
			covered[t] = true
		}
	}
	for _, e := range m.Edges {
		if !covered[e.LeftTable] || !covered[e.RightTable] {
			return fmt.Errorf("edge %s.%s = %s.%s references a table no shard covers",
				e.LeftTable, e.LeftCol, e.RightTable, e.RightCol)
		}
		if e.LeftTable == e.RightTable {
			return fmt.Errorf("self-join edge on %q", e.LeftTable)
		}
	}
	for _, s := range m.Shards {
		if err := m.checkShardConnected(s); err != nil {
			return err
		}
	}
	return nil
}

// checkShardConnected verifies the shard's tables are connected by the
// manifest edges internal to the shard.
func (m *Manifest) checkShardConnected(s Spec) error {
	if len(s.Tables) == 1 {
		return nil
	}
	inShard := make(map[string]bool, len(s.Tables))
	for _, t := range s.Tables {
		inShard[t] = true
	}
	adj := make(map[string][]string)
	for _, e := range m.Edges {
		if inShard[e.LeftTable] && inShard[e.RightTable] {
			adj[e.LeftTable] = append(adj[e.LeftTable], e.RightTable)
			adj[e.RightTable] = append(adj[e.RightTable], e.LeftTable)
		}
	}
	reached := map[string]bool{s.Tables[0]: true}
	frontier := []string{s.Tables[0]}
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, nb := range adj[cur] {
			if !reached[nb] {
				reached[nb] = true
				frontier = append(frontier, nb)
			}
		}
	}
	if len(reached) != len(s.Tables) {
		return fmt.Errorf("shard %q tables %v are not connected by the manifest edges", s.Name, s.Tables)
	}
	return nil
}
