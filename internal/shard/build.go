package shard

import (
	"fmt"
	"sort"

	"neurocard/internal/exec"
	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// Build computes the manifest for a partition of the schema: one Spec per
// part (named <logical>-s<i> with checkpoint <logical>-s<i>.ckpt) and an
// EdgeStat for every schema edge, with the offline join statistics the
// combiner needs. Parts must be non-empty connected table sets that
// together cover the schema; overlap is allowed.
func Build(sch *schema.Schema, logical string, parts [][]string) (*Manifest, error) {
	if logical == "" {
		return nil, fmt.Errorf("shard: empty logical model name")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("shard: no parts")
	}
	covered := make(map[string]bool)
	m := &Manifest{Version: ManifestVersion, Logical: logical}
	for i, part := range parts {
		if err := sch.ValidateQuerySet(part); err != nil {
			return nil, fmt.Errorf("shard: part %d: %w", i, err)
		}
		name := fmt.Sprintf("%s-s%d", logical, i)
		m.Shards = append(m.Shards, Spec{
			Name:       name,
			Checkpoint: name + ".ckpt",
			Tables:     append([]string(nil), part...),
		})
		for _, t := range part {
			covered[t] = true
		}
	}
	for _, t := range sch.Tables() {
		if !covered[t] {
			return nil, fmt.Errorf("shard: table %q is covered by no part", t)
		}
	}
	for _, child := range sch.Tables() {
		pe, ok := sch.Parent(child)
		if !ok {
			continue
		}
		join, err := exec.InnerJoinSize(sch, []string{pe.Parent, child})
		if err != nil {
			return nil, err
		}
		lRows, lDistinct := keyStats(sch.Table(pe.Parent).Col(pe.ParentCol))
		rRows, rDistinct := keyStats(sch.Table(child).Col(pe.ChildCol))
		m.Edges = append(m.Edges, EdgeStat{
			LeftTable: pe.Parent, LeftCol: pe.ParentCol,
			RightTable: child, RightCol: pe.ChildCol,
			JoinRows: join,
			LeftRows: lRows, RightRows: rRows,
			LeftDistinct: lDistinct, RightDistinct: rDistinct,
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// keyStats counts a join-key column's non-NULL rows and distinct non-NULL
// values (NULL keys never participate in an equi-join).
func keyStats(c *table.Column) (rows, distinct float64) {
	seen := make([]bool, c.DictSize())
	for _, id := range c.IDs() {
		if id == table.NullID {
			continue
		}
		rows++
		if !seen[id] {
			seen[id] = true
			distinct++
		}
	}
	return rows, distinct
}

// Partition splits the schema's tables into k disjoint connected parts by
// repeatedly cutting the heaviest part (by total rows) at the edge whose
// child subtree best balances the split. Deterministic for a fixed schema.
func Partition(sch *schema.Schema, k int) ([][]string, error) {
	if k < 1 {
		return nil, fmt.Errorf("shard: want at least 1 part, got %d", k)
	}
	if k > sch.NumTables() {
		return nil, fmt.Errorf("shard: %d parts exceed %d tables", k, sch.NumTables())
	}
	type part struct {
		root   string
		tables []string
		weight float64
	}
	weight := func(tables []string) float64 {
		w := 0.0
		for _, t := range tables {
			w += float64(sch.Table(t).NumRows())
		}
		return w
	}
	parts := []part{{root: sch.Root(), tables: append([]string(nil), sch.Tables()...)}}
	parts[0].weight = weight(parts[0].tables)
	for len(parts) < k {
		// Split the heaviest part; ties break toward the earlier part so
		// the result is deterministic.
		hi := 0
		for i := range parts {
			if parts[i].weight > parts[hi].weight {
				hi = i
			}
		}
		p := parts[hi]
		if len(p.tables) < 2 {
			return nil, fmt.Errorf("shard: cannot split single-table part %q further", p.root)
		}
		inPart := make(map[string]bool, len(p.tables))
		for _, t := range p.tables {
			inPart[t] = true
		}
		// Candidate cuts: every non-root member whose parent is also in the
		// part. Cutting t moves t's subtree (within the part) out.
		best, bestDiff := "", 0.0
		var bestSub []string
		for _, t := range p.tables {
			pe, ok := sch.Parent(t)
			if !ok || !inPart[pe.Parent] {
				continue
			}
			sub := subtreeWithin(sch, t, inPart)
			diff := abs(p.weight - 2*weight(sub))
			if best == "" || diff < bestDiff || (diff == bestDiff && t < best) {
				best, bestDiff, bestSub = t, diff, sub
			}
		}
		moved := make(map[string]bool, len(bestSub))
		for _, t := range bestSub {
			moved[t] = true
		}
		var rest []string
		for _, t := range p.tables {
			if !moved[t] {
				rest = append(rest, t)
			}
		}
		parts[hi] = part{root: p.root, tables: rest, weight: weight(rest)}
		parts = append(parts, part{root: best, tables: bestSub, weight: weight(bestSub)})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].tables[0] < parts[j].tables[0] })
	out := make([][]string, len(parts))
	for i, p := range parts {
		out[i] = p.tables
	}
	return out, nil
}

// subtreeWithin collects t and its schema descendants restricted to the
// part, in BFS order.
func subtreeWithin(sch *schema.Schema, t string, inPart map[string]bool) []string {
	out := []string{t}
	for i := 0; i < len(out); i++ {
		for _, c := range sch.Children(out[i]) {
			if inPart[c] {
				out = append(out, c)
			}
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
