package made

import (
	"math"
	"math/rand"
	"testing"
)

// TestTrainSessionMatchesTrainStep is the training-path equivalence
// contract: a TrainSession fed the same batches as the legacy TrainStep on
// an identically-seeded twin model must reproduce the loss trajectory and
// the final parameters. The session consumes the model RNG in the same
// pattern, and every prefix-structured/fused kernel preserves per-element
// accumulation order, so agreement is expected to machine precision.
func TestTrainSessionMatchesTrainStep(t *testing.T) {
	doms := []int{3, 7, 2, 5, 4}
	legacy, err := New(tinyConfig(21), doms)
	if err != nil {
		t.Fatal(err)
	}
	session, err := New(tinyConfig(21), doms)
	if err != nil {
		t.Fatal(err)
	}
	ts := session.NewTrainSession(32)

	dataRng := rand.New(rand.NewSource(33))
	for step := 0; step < 60; step++ {
		// Batch sizes vary (including non-multiples of the kernel blocking
		// factor) to cover the blocked and remainder paths.
		batch := randBatch(dataRng, doms, 5+dataRng.Intn(28))
		lossLegacy := legacy.TrainStep(batch, 0.4)
		lossSession := ts.Step(batch, 0.4)
		if math.Abs(lossLegacy-lossSession) > 1e-9*(1+math.Abs(lossLegacy)) {
			t.Fatalf("step %d: legacy loss %v vs session loss %v", step, lossLegacy, lossSession)
		}
	}
	for pi, p := range legacy.params {
		q := session.params[pi]
		for i := range p.Val.Data {
			if math.Abs(p.Val.Data[i]-q.Val.Data[i]) > 1e-9 {
				t.Fatalf("%s[%d]: legacy %v vs session %v", p.Name, i, p.Val.Data[i], q.Val.Data[i])
			}
		}
	}
	// Held-out NLL must agree too.
	probe := randBatch(dataRng, doms, 16)
	if a, b := legacy.NLL(probe), session.NLL(probe); math.Abs(a-b) > 1e-9 {
		t.Fatalf("final NLL diverged: %v vs %v", a, b)
	}
	if legacy.SamplesSeen() != session.SamplesSeen() {
		t.Fatalf("SamplesSeen %d vs %d", legacy.SamplesSeen(), session.SamplesSeen())
	}
}

// TestTrainSessionBackwardMatchesReference compares the session's
// prefix-structured backward pass against the dense reference backward on
// the same weights: every parameter gradient must match to 1e-12. Together
// with the finite-difference checks on the reference path (TestGradientCheck),
// this validates the new kernels' backward formulas end to end.
func TestTrainSessionBackwardMatchesReference(t *testing.T) {
	doms := []int{4, 3, 6, 2}
	ref, err := New(tinyConfig(22), doms)
	if err != nil {
		t.Fatal(err)
	}
	ses, err := New(tinyConfig(22), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// Non-trivial weights: a few identical warmup steps on both models.
	for s := 0; s < 5; s++ {
		batch := randBatch(rng, doms, 16)
		ref.TrainStep(batch, 0)
		ses.TrainStep(batch, 0)
	}
	batch := randBatch(rng, doms, 11)
	inputs := make([][]int32, len(batch))
	for i := range batch {
		inputs[i] = append([]int32(nil), batch[i]...)
	}
	inputs[0][1] = MaskToken
	inputs[3][0] = MaskToken

	lossRef := ref.backward(inputs, batch)
	ts := ses.NewTrainSession(len(batch))
	lossSes := ts.backward(inputs, batch)
	if math.Abs(lossRef-lossSes) > 1e-12*(1+math.Abs(lossRef)) {
		t.Fatalf("backward loss %v vs %v", lossSes, lossRef)
	}
	for pi, p := range ref.params {
		q := ses.params[pi]
		for i := range p.Grad.Data {
			if math.Abs(p.Grad.Data[i]-q.Grad.Data[i]) > 1e-12 {
				t.Fatalf("%s grad[%d]: ref %v vs session %v", p.Name, i, p.Grad.Data[i], q.Grad.Data[i])
			}
		}
	}
}

// TestTrainSessionCapacityPanic documents the capacity contract.
func TestTrainSessionCapacityPanic(t *testing.T) {
	m, err := New(tinyConfig(23), []int{3, 3})
	if err != nil {
		t.Fatal(err)
	}
	ts := m.NewTrainSession(4)
	if ts.Cap() != 4 {
		t.Fatalf("Cap = %d", ts.Cap())
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized batch did not panic")
		}
	}()
	ts.Step(randBatch(rand.New(rand.NewSource(1)), []int{3, 3}, 5), 0)
}

// benchModel builds a JOB-light-scale model for training benchmarks.
func benchModel(b *testing.B, seed int64) (*Model, [][]int32) {
	b.Helper()
	doms := []int{100, 50, 1000, 12, 2, 2, 2, 2, 2, 2, 30, 30, 500, 8}
	cfg := DefaultConfig()
	cfg.Seed = seed
	m, err := New(cfg, doms)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	return m, randBatch(rng, doms, 256)
}

// BenchmarkTrainStep compares one gradient step through the legacy
// per-call-allocating path and the zero-alloc TrainSession with
// prefix-structured kernels — the made-level before/after of the
// training-path overhaul (EXPERIMENTS.md).
func BenchmarkTrainStep(b *testing.B) {
	b.Run("legacy", func(b *testing.B) {
		m, batch := benchModel(b, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.TrainStep(batch, 0.5)
		}
		b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "tuples/sec")
	})
	b.Run("session", func(b *testing.B) {
		m, batch := benchModel(b, 1)
		ts := m.NewTrainSession(len(batch))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ts.Step(batch, 0.5)
		}
		b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "tuples/sec")
	})
}
