package made

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/nn"
)

// randTokens draws a full token tuple (no wildcards) for the model domains.
func randTokens(rng *rand.Rand, doms []int) []int32 {
	row := make([]int32, len(doms))
	for i, d := range doms {
		row[i] = int32(rng.Intn(d))
	}
	return row
}

// assertProbsMatch checks the session's conditional for col against the
// reference Conditional on the same token state, to within tol.
func assertProbsMatch(t *testing.T, m *Model, s *InferSession, col int, tol float64) {
	t.Helper()
	b := s.Rows()
	tokens := make([][]int32, b)
	for r := 0; r < b; r++ {
		tokens[r] = append([]int32(nil), s.TokenRow(r)...)
	}
	want := nn.NewMat(b, m.DomainSize(col))
	m.Conditional(tokens, col, want)
	got := s.Probs(col)
	if got.Rows != b || got.Cols != m.DomainSize(col) {
		t.Fatalf("col %d: Probs shape %dx%d, want %dx%d", col, got.Rows, got.Cols, b, m.DomainSize(col))
	}
	for i := range want.Data {
		if d := math.Abs(got.Data[i] - want.Data[i]); d > tol {
			t.Fatalf("col %d: session prob %v vs Conditional %v (|Δ| = %g > %g)",
				col, got.Data[i], want.Data[i], d, tol)
		}
	}
}

// TestInferSessionMatchesConditional drives a session through the access
// pattern progressive sampling uses — incremental token assignment in
// column order with interleaved head reads and row compaction — and checks
// every returned distribution against the from-scratch Conditional to 1e-9.
func TestInferSessionMatchesConditional(t *testing.T) {
	configs := []struct {
		doms   []int
		blocks int
	}{
		{[]int{3}, 1},
		{[]int{4, 2, 5}, 0},
		{[]int{6, 3, 2, 8, 4}, 2},
		{[]int{2, 2, 2, 2, 2, 2, 17}, 1},
	}
	for ci, tc := range configs {
		cfg := DefaultConfig()
		cfg.Hidden = 24
		cfg.EmbedDim = 6
		cfg.Blocks = tc.blocks
		cfg.Seed = int64(ci + 1)
		m, err := New(cfg, tc.doms)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + ci)))
		s := m.NewInferSession(16)

		// Two batches on the same session to exercise Reset reuse.
		for batch := 0; batch < 2; batch++ {
			b := 5 + batch*7
			s.Reset(b)
			for col := 0; col < m.NumCols(); col++ {
				assertProbsMatch(t, m, s, col, 1e-9)
				for r := 0; r < s.Rows(); r++ {
					if rng.Float64() < 0.3 {
						continue // leave a wildcard
					}
					s.SetToken(r, col, int32(rng.Intn(tc.doms[col])))
				}
				// Occasionally drop rows the way compactZero does.
				if s.Rows() > 2 && rng.Float64() < 0.4 {
					s.CompactRows(0, s.Rows()-1)
					s.Shrink(s.Rows() - 1)
				}
			}
			// Re-read every head off the final token state, including
			// overwriting a token back to a wildcard.
			s.SetToken(0, 0, MaskToken)
			for col := 0; col < m.NumCols(); col++ {
				assertProbsMatch(t, m, s, col, 1e-9)
			}
		}
	}
}

// TestInferSessionReplicate: fanning a single row out to n rows must leave
// the session in exactly the state of an n-row session that was driven to
// the same tokens row by row — tokens, incremental preactivation, and cached
// trunk included. The test drives both sessions onward after the fan-out
// (per-row divergent tokens, compaction) and checks every head against the
// from-scratch Conditional.
func TestInferSessionReplicate(t *testing.T) {
	for ci, doms := range [][]int{
		{5, 3, 4},
		{2, 2, 6, 3, 2, 4},
	} {
		cfg := DefaultConfig()
		cfg.Hidden = 24
		cfg.EmbedDim = 6
		cfg.Blocks = 2
		cfg.Seed = int64(ci + 3)
		m, err := New(cfg, doms)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(40 + ci)))
		s := m.NewInferSession(8)
		s.Reset(1)

		// Single-row phase: the lazy kernel's deterministic prefix — set a
		// few leading columns on row 0 with interleaved head reads so the
		// trunk cache is partially built at fan-out time.
		split := len(doms) / 2
		for col := 0; col < split; col++ {
			assertProbsMatch(t, m, s, col, 1e-9)
			s.SetToken(0, col, int32(rng.Intn(doms[col])))
		}
		s.Replicate(6)
		if s.Rows() != 6 {
			t.Fatalf("rows after Replicate = %d, want 6", s.Rows())
		}
		row0 := append([]int32(nil), s.TokenRow(0)...)
		for r := 1; r < 6; r++ {
			for c, tok := range s.TokenRow(r) {
				if tok != row0[c] {
					t.Fatalf("row %d col %d token %d, want replica of %d", r, c, tok, row0[c])
				}
			}
		}

		// Divergent phase: per-row tokens, head reads, and compaction.
		for col := split; col < len(doms); col++ {
			assertProbsMatch(t, m, s, col, 1e-9)
			for r := 0; r < s.Rows(); r++ {
				s.SetToken(r, col, int32(rng.Intn(doms[col])))
			}
			if col == split && s.Rows() > 2 {
				s.CompactRows(1, s.Rows()-1)
				s.Shrink(s.Rows() - 1)
			}
		}
		for col := 0; col < len(doms); col++ {
			assertProbsMatch(t, m, s, col, 1e-9)
		}
	}
}

// TestInferSessionReplicateRequiresSingleRow: replicating a multi-row batch
// is a kernel bug; the session must refuse.
func TestInferSessionReplicateRequiresSingleRow(t *testing.T) {
	m, err := New(Config{EmbedDim: 4, Hidden: 8, Blocks: 1, Seed: 1}, []int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewInferSession(4)
	s.Reset(2)
	defer func() {
		if recover() == nil {
			t.Error("Replicate from a 2-row batch did not panic")
		}
	}()
	s.Replicate(4)
}

// TestInferSessionRefreshAfterTraining: weight updates invalidate the
// session's cached MASK projections; the next Reset must refresh them.
func TestInferSessionRefreshAfterTraining(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.EmbedDim = 4
	cfg.Blocks = 1
	doms := []int{5, 3, 4}
	m, err := New(cfg, doms)
	if err != nil {
		t.Fatal(err)
	}
	s := m.NewInferSession(8)
	s.Reset(4)
	s.Probs(2)

	rng := rand.New(rand.NewSource(9))
	batch := make([][]int32, 32)
	for i := range batch {
		batch[i] = randTokens(rng, doms)
	}
	for step := 0; step < 3; step++ {
		m.TrainStep(batch, 0.3)
	}

	s.Reset(4)
	for r := 0; r < 4; r++ {
		s.SetToken(r, 0, int32(r%5))
	}
	for col := 0; col < m.NumCols(); col++ {
		assertProbsMatch(t, m, s, col, 1e-9)
	}
}
