package made

import "neurocard/internal/nn"

// servingWeights is the serving-kernel view of a model's parameters at
// element width T. The float64 view aliases the trainable parameter storage
// directly (zero copies, always current); the float32 view is a converted
// snapshot built once per model version — conversion-at-load, shared by
// every session of the model, so the resident serving-kernel bytes halve
// regardless of session count. Checkpoints always store float64; a float32
// view can be rebuilt from the masters at any time.
type servingWeights[T nn.Elem] struct {
	m       *Model // metadata: offsets, prefixWidth, doms (never element data)
	version uint64 // model version these weights mirror

	inW    *nn.MatG[T]
	inB    []T // Hidden
	blocks []servingBlock[T]
	headW  []*nn.MatG[T] // float64 view only; float32 stores headWT instead
	headB  [][]T
	embeds []*nn.MatG[T] // (doms[i]+1) × EmbedDim; last row = MASK embedding
	embVw  []*nn.MatG[T] // first doms[i] rows of embeds[i] (tied projection)

	// headWT holds each head weight transposed (EmbedDim × Hidden) — set only
	// on the float32 view, where the transposed layout turns the head
	// projection into contiguous dot products (nn.MatMulColsBT32). It
	// replaces headW rather than duplicating it, so the float32 resident
	// bytes stay at exactly half the float64 view's.
	headWT []*nn.MatG[T]
}

type servingBlock[T nn.Elem] struct {
	w1 *nn.MatG[T] // float64 view only; float32 stores w1T/w2T instead
	b1 []T
	w2 *nn.MatG[T]
	b2 []T

	// w1T/w2T are the transposed trunk weights of the float32 view (see
	// servingWeights.headWT); nil on the float64 view.
	w1T *nn.MatG[T]
	w2T *nn.MatG[T]
}

// weights64 builds the aliasing float64 view. The view shares storage with
// the trainable parameters, so it tracks TrainStep updates with no copy; it
// is rebuilt per session construction (a handful of slice headers) rather
// than cached, because parameter Mats could in principle be re-pointed by a
// future load path.
func (m *Model) weights64() *servingWeights[float64] {
	w := &servingWeights[float64]{
		m:       m,
		version: m.version,
		inW:     m.inW.Val,
		inB:     m.inB.Val.Row(0),
	}
	for _, blk := range m.blocks {
		w.blocks = append(w.blocks, servingBlock[float64]{
			w1: blk.w1.Val, b1: blk.b1.Val.Row(0),
			w2: blk.w2.Val, b2: blk.b2.Val.Row(0),
		})
	}
	for i := range m.doms {
		w.headW = append(w.headW, m.headW[i].Val)
		w.headB = append(w.headB, m.headB[i].Val.Row(0))
		w.embeds = append(w.embeds, m.embeds[i].Val)
		w.embVw = append(w.embVw, m.embViews[i])
	}
	return w
}

// weights32 returns the model's shared float32 serving snapshot, converting
// the float64 masters when none exists or when training has advanced the
// model version since the last conversion. Snapshots are immutable once
// published — a refresh builds a fresh one and swaps the pointer — so
// concurrent sessions never observe a half-converted kernel set.
func (m *Model) weights32() *servingWeights[float32] {
	if w := m.w32.Load(); w != nil && w.version == m.version {
		return w
	}
	w := &servingWeights[float32]{
		m:       m,
		version: m.version,
		inW:     nn.Convert32(m.inW.Val),
		inB:     convert32(m.inB.Val.Row(0)),
	}
	for _, blk := range m.blocks {
		w.blocks = append(w.blocks, servingBlock[float32]{
			w1T: nn.ConvertT32(blk.w1.Val), b1: convert32(blk.b1.Val.Row(0)),
			w2T: nn.ConvertT32(blk.w2.Val), b2: convert32(blk.b2.Val.Row(0)),
		})
	}
	for i, d := range m.doms {
		w.headWT = append(w.headWT, nn.ConvertT32(m.headW[i].Val))
		w.headB = append(w.headB, convert32(m.headB[i].Val.Row(0)))
		e := nn.Convert32(m.embeds[i].Val)
		w.embeds = append(w.embeds, e)
		w.embVw = append(w.embVw, &nn.Mat32{Rows: d, Cols: e.Cols, Data: e.Data[:d*e.Cols]})
	}
	m.w32.Store(w)
	return w
}

func convert32(src []float64) []float32 {
	out := make([]float32, len(src))
	for i, v := range src {
		out[i] = float32(v)
	}
	return out
}

// addEmbProjFrom accumulates sign·(emb_c[id] · inW[block c]) into dst over
// hidden units [from, Hidden) — the serving-width counterpart of
// Model.addEmbProjFrom, reading this view's (possibly converted) weights so
// the session hot path never mixes element widths.
func (w *servingWeights[T]) addEmbProjFrom(dst []T, c int, id int32, sign T, from int) {
	emb := w.embeds[c].Row(int(id))
	base := w.m.offsets[c]
	sub := dst[from:]
	if s32, ok := any(sub).([]float32); ok {
		// Float32 width: SSE axpy rows (same per-element semantics as the
		// scalar loop below, just 4 lanes wide).
		e32 := any(emb).([]float32)
		inW := any(w.inW).(*nn.Mat32)
		sg := any(sign).(float32)
		for j, ev := range e32 {
			v := ev * sg
			if v == 0 {
				continue
			}
			nn.Axpy32(v, inW.Row(base + j)[from:], s32)
		}
		return
	}
	for j, ev := range emb {
		v := ev * sign
		if v == 0 {
			continue
		}
		wrow := w.inW.Row(base + j)[from:]
		for k, wv := range wrow {
			sub[k] += v * wv
		}
	}
}
