package made

import (
	"fmt"

	"neurocard/internal/nn"
)

// sessMat is a preallocated matrix whose active row count (and, for the
// logits buffer, column count) is adjusted in place, so resizing the working
// batch never allocates.
type sessMat struct {
	mat  nn.Mat
	full []float64
}

func newSessMat(rows, cols int) sessMat {
	return sessMat{mat: nn.Mat{Cols: cols}, full: make([]float64, rows*cols)}
}

// view returns the buffer shaped rows × (fixed Cols), sharing storage.
func (s *sessMat) view(rows int) *nn.Mat {
	s.mat.Rows = rows
	s.mat.Data = s.full[:rows*s.mat.Cols]
	return &s.mat
}

// viewShape returns the buffer reshaped rows × cols, sharing storage.
func (s *sessMat) viewShape(rows, cols int) *nn.Mat {
	s.mat.Rows, s.mat.Cols = rows, cols
	s.mat.Data = s.full[:rows*cols]
	return &s.mat
}

// InferSession is a reusable inference context over a Model: it owns every
// scratch buffer the progressive-sampling hot path needs (token matrix,
// input-layer preactivation, per-layer trunk activations, head buffers) and
// keeps the trunk input incrementally up to date, so serving a query — and
// every query after it — allocates nothing.
//
// The key restructuring versus Conditional: the session maintains z0, the
// input-layer preactivation x·inW + inB, under per-token delta updates
// (SetToken costs EmbedDim×Hidden per row instead of a full NumCols·
// EmbedDim×Hidden input matmul), and computes the residual trunk once per
// sampling step — Probs serves any column's head from the cached trunk top
// until a token changes. Across an F-column query this turns the input
// layer's O(F²·E·H) total work into O(F·E·H).
//
// Sessions are not safe for concurrent use; create one per worker. Weight
// updates (TrainStep) are detected via the model's version counter and the
// cached MASK projections are refreshed on the next Reset.
type InferSession struct {
	m    *Model
	pool *nn.Pool // kernel execution pool; nn.Serial in serial mode
	cap  int      // row capacity
	b    int      // active rows

	tokens []int32 // cap × n, row-major; MaskToken marks wildcards

	z0       sessMat   // input-layer preactivation, incrementally maintained
	h0       sessMat   // relu(z0)
	mid, res []sessMat // per residual block: inner activation, block output
	proj     sessMat   // head scratch: embedding projection
	logits   sessMat   // head logits / probabilities (cap × maxDom backing)

	maskProj *nn.Mat   // n × Hidden: each column's MASK contribution to z0
	maskZ    []float64 // Hidden: preactivation of the all-MASK row (incl. bias)

	version uint64 // model version maskProj/maskZ were computed at
	top     *nn.Mat
	trunkM  int  // hidden-prefix width the cached trunk covers
	dirty   bool // tokens changed since the trunk was last computed
}

// NewInferSession creates a session able to hold up to maxRows sampling rows.
func (m *Model) NewInferSession(maxRows int) *InferSession {
	if maxRows < 1 {
		maxRows = 1
	}
	maxDom := 0
	for _, d := range m.doms {
		if d > maxDom {
			maxDom = d
		}
	}
	h := m.cfg.Hidden
	s := &InferSession{
		m:        m,
		pool:     nn.Default(),
		cap:      maxRows,
		tokens:   make([]int32, maxRows*m.n),
		z0:       newSessMat(maxRows, h),
		h0:       newSessMat(maxRows, h),
		proj:     newSessMat(maxRows, m.cfg.EmbedDim),
		logits:   newSessMat(maxRows, maxDom),
		maskProj: nn.NewMat(m.n, h),
		maskZ:    make([]float64, h),
	}
	for b := 0; b < m.cfg.Blocks; b++ {
		s.mid = append(s.mid, newSessMat(maxRows, h))
		s.res = append(s.res, newSessMat(maxRows, h))
	}
	s.refresh()
	return s
}

// refresh recomputes the weight-derived caches (per-column MASK projections
// and the all-MASK preactivation row).
func (s *InferSession) refresh() {
	m := s.m
	s.maskProj.Zero()
	copy(s.maskZ, m.inB.Val.Row(0))
	for c := 0; c < m.n; c++ {
		row := s.maskProj.Row(c)
		m.addEmbProj(row, c, int32(m.doms[c]), 1) // row doms[c] is the MASK embedding
		for k, v := range row {
			s.maskZ[k] += v
		}
	}
	s.version = m.version
}

// Cap returns the session's row capacity.
func (s *InferSession) Cap() int { return s.cap }

// SetSerial switches the session's kernels between the shared parallel pool
// and fully inline execution. Batch-serving workers run serial so total
// goroutine count stays at one per worker instead of workers × kernel
// chunks (the DESIGN.md §1.2 oversubscription limitation).
func (s *InferSession) SetSerial(on bool) {
	if on {
		s.pool = nn.Serial
	} else {
		s.pool = nn.Default()
	}
}

// Rows returns the active row count.
func (s *InferSession) Rows() int { return s.b }

// Reset starts a fresh sampling batch of the given row count: every token
// becomes a wildcard and the preactivation is restored to the all-MASK row.
func (s *InferSession) Reset(rows int) {
	if rows < 0 || rows > s.cap {
		panic(fmt.Sprintf("made: InferSession.Reset %d rows, capacity %d", rows, s.cap))
	}
	if s.version != s.m.version {
		s.refresh()
	}
	s.b = rows
	toks := s.tokens[:rows*s.m.n]
	for i := range toks {
		toks[i] = MaskToken
	}
	z := s.z0.view(rows)
	for r := 0; r < rows; r++ {
		copy(z.Row(r), s.maskZ)
	}
	s.dirty = true
}

// TokenRow returns row r's token vector, aliasing session storage. Callers
// must treat it as read-only; use SetToken to mutate.
func (s *InferSession) TokenRow(r int) []int32 {
	n := s.m.n
	return s.tokens[r*n : (r+1)*n]
}

// SetToken assigns column col of row r (MaskToken restores the wildcard),
// updating the input-layer preactivation by the embedding delta.
func (s *InferSession) SetToken(r, col int, tok int32) {
	m := s.m
	old := s.tokens[r*m.n+col]
	if old == tok {
		return
	}
	zrow := s.z0.view(s.b).Row(r)
	if old < 0 {
		for k, v := range s.maskProj.Row(col) {
			zrow[k] -= v
		}
	} else {
		m.addEmbProj(zrow, col, old, -1)
	}
	if tok < 0 {
		tok = MaskToken
		for k, v := range s.maskProj.Row(col) {
			zrow[k] += v
		}
	} else {
		m.addEmbProj(zrow, col, tok, 1)
	}
	s.tokens[r*m.n+col] = tok
	s.dirty = true
}

// CompactRows overwrites row dst with row src (tokens and preactivation),
// the primitive behind active-row compaction: callers move live rows into
// slots freed by zero-weight rows, then Shrink.
func (s *InferSession) CompactRows(dst, src int) {
	if dst == src {
		return
	}
	n := s.m.n
	copy(s.tokens[dst*n:(dst+1)*n], s.tokens[src*n:(src+1)*n])
	z := s.z0.view(s.b)
	copy(z.Row(dst), z.Row(src))
	s.dirty = true
}

// Shrink reduces the active row count to rows (rows ≤ current).
func (s *InferSession) Shrink(rows int) {
	if rows < 0 || rows > s.b {
		panic(fmt.Sprintf("made: InferSession.Shrink %d rows, active %d", rows, s.b))
	}
	if rows != s.b {
		s.b = rows
		s.dirty = true
	}
}

// trunk runs the residual MLP over the current preactivation into the
// session buffers, computing only the leading mW hidden units of every
// layer — the contiguous "degree ≤ col" prefix the requested head reads.
// Skipped entries only ever multiply masked-zero weights, so the restricted
// pass is arithmetically identical to the full one.
func (s *InferSession) trunk(mW int) {
	m, b := s.m, s.b
	z := s.z0.view(b)
	h := s.h0.view(b)
	s.top = h
	if mW > 0 {
		for r := 0; r < b; r++ {
			zrow := z.Row(r)[:mW]
			hrow := h.Row(r)[:mW]
			for i, v := range zrow {
				if v > 0 {
					hrow[i] = v
				} else {
					hrow[i] = 0
				}
			}
		}
		cur := h
		for bi, blk := range m.blocks {
			a := s.mid[bi].view(b)
			s.pool.MatMulSub(a, cur, blk.w1.Val, mW, mW)
			nn.AddBiasSub(a, blk.b1.Val.Row(0), mW)
			for r := 0; r < b; r++ {
				arow := a.Row(r)[:mW]
				for i, v := range arow {
					if v < 0 {
						arow[i] = 0
					}
				}
			}
			f := s.res[bi].view(b)
			s.pool.MatMulSub(f, a, blk.w2.Val, mW, mW)
			nn.AddBiasSub(f, blk.b2.Val.Row(0), mW)
			for r := 0; r < b; r++ {
				frow := f.Row(r)[:mW]
				crow := cur.Row(r)[:mW]
				for i := range frow {
					frow[i] += crow[i]
				}
			}
			cur = f
		}
		s.top = cur
	}
	s.trunkM = mW
	s.dirty = false
}

// Probs computes p(X_col = · | current tokens) for every active row,
// returning a session-owned b × DomainSize(col) matrix of row-normalized
// probabilities (valid until the next session call). The trunk is reused
// across consecutive Probs calls when no token changed in between; head
// masking (degree ≤ col) is the prefix restriction itself, so no separate
// masked copy of the hidden state is needed.
func (s *InferSession) Probs(col int) *nn.Mat {
	m := s.m
	if col < 0 || col >= m.n {
		panic(fmt.Sprintf("made: InferSession.Probs column %d of %d", col, m.n))
	}
	mW := m.prefixWidth[col]
	if s.dirty || s.trunkM < mW {
		s.trunk(mW)
	}
	proj := s.proj.view(s.b)
	s.pool.MatMulSub(proj, s.top, m.headW[col].Val, mW, m.cfg.EmbedDim)
	out := s.logits.viewShape(s.b, m.doms[col])
	s.pool.MatMulBT(out, proj, m.embedRowsView(col))
	s.pool.AddBias(out, m.headB[col].Val.Row(0))
	s.pool.SoftmaxRows(out, out)
	return out
}
