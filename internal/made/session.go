package made

import (
	"fmt"

	"neurocard/internal/nn"
)

// sessMatG is a preallocated matrix whose active row count (and, for the
// logits buffer, column count) is adjusted in place, so resizing the working
// batch never allocates.
type sessMatG[T nn.Elem] struct {
	mat  nn.MatG[T]
	full []T
}

// sessMat is the float64 instantiation, used by training-side scratch (NLL).
type sessMat = sessMatG[float64]

func newSessMat(rows, cols int) sessMat { return newSessMatG[float64](rows, cols) }

func newSessMatG[T nn.Elem](rows, cols int) sessMatG[T] {
	return sessMatG[T]{mat: nn.MatG[T]{Cols: cols}, full: make([]T, rows*cols)}
}

// view returns the buffer shaped rows × (fixed Cols), sharing storage.
func (s *sessMatG[T]) view(rows int) *nn.MatG[T] {
	s.mat.Rows = rows
	s.mat.Data = s.full[:rows*s.mat.Cols]
	return &s.mat
}

// viewShape returns the buffer reshaped rows × cols, sharing storage.
func (s *sessMatG[T]) viewShape(rows, cols int) *nn.MatG[T] {
	s.mat.Rows, s.mat.Cols = rows, cols
	s.mat.Data = s.full[:rows*cols]
	return &s.mat
}

// copyRow copies row src into row dst at the buffer's fixed column width.
func (s *sessMatG[T]) copyRow(dst, src int) {
	c := s.mat.Cols
	copy(s.full[dst*c:(dst+1)*c], s.full[src*c:(src+1)*c])
}

// copyRowPrefix copies only the leading w entries of row src into row dst —
// trunk buffers are valid (and read) only on [0, validW), so compaction and
// replication skip the stale suffix that extendTrunk would overwrite anyway.
func (s *sessMatG[T]) copyRowPrefix(dst, src, w int) {
	c := s.mat.Cols
	copy(s.full[dst*c:dst*c+w], s.full[src*c:src*c+w])
}

// InferSessionOf is a reusable inference context over a Model at element
// width T: it owns every scratch buffer the progressive-sampling hot path
// needs (token matrix, input-layer preactivation, per-layer trunk
// activations, head buffers) and keeps the trunk input incrementally up to
// date, so serving a query — and every query after it — allocates nothing.
// All activations, cached projections, and weight reads run at width T end
// to end; the hot path never mixes widths.
//
// Two structural facts make the hot path cheap. First, the session maintains
// z0, the input-layer preactivation x·inW + inB, under per-token delta
// updates (SetToken costs EmbedDim×suffix per row instead of a full
// NumCols·EmbedDim×Hidden input matmul). Second — the sorted-degree
// invariant — hidden unit u of every layer depends only on units of degree
// ≤ degrees[u], all inside the contiguous prefix [0, u's degree run). Once
// every model column < col is final (drawn or permanently wildcard), the
// leading prefixWidth[col] units of every layer are final too. The session
// tracks that boundary in validW and extends each layer by only the
// newly-unmasked column range [validW, prefixWidth[col]) per sampling step,
// so across a whole query every hidden unit is computed once — a single
// logical trunk pass amortized over all steps — instead of one full
// prefix-trunk pass per step.
//
// Sessions are not safe for concurrent use; create one per worker. Weight
// updates (TrainStep) are detected via the model's version counter: the next
// Reset re-resolves the serving weights (for float32, a freshly converted
// shared snapshot) and recomputes the cached MASK projections.
type InferSessionOf[T nn.Elem] struct {
	m      *Model
	w      *servingWeights[T]        // serving-width weight view (see weights.go)
	reload func() *servingWeights[T] // re-resolves w after a version change
	pool   *nn.Pool                  // kernel execution pool; nn.Serial in serial mode
	cap    int                       // row capacity
	b      int                       // active rows

	tokens []int32 // cap × n, row-major; MaskToken marks wildcards

	z0       sessMatG[T]   // input-layer preactivation, incrementally maintained
	h0       sessMatG[T]   // relu(z0), maintained on [0, validW)
	mid, res []sessMatG[T] // per residual block: inner activation, block output
	proj     sessMatG[T]   // head scratch: embedding projection
	logits   sessMatG[T]   // head logits / probabilities (cap × maxDom backing)

	maskProj *nn.MatG[T] // n × Hidden: each column's MASK contribution to z0
	maskZ    []T         // Hidden: preactivation of the all-MASK row (incl. bias)

	version uint64       // model version maskProj/maskZ were computed at
	topBuf  *sessMatG[T] // trunk output layer (res[last], or h0 with no blocks)
	validW  int          // layer prefix [0, validW) computed and final for current tokens
}

// InferSession is the float64 inference session — the width training uses,
// and the default serving path.
type InferSession = InferSessionOf[float64]

// InferSession32 is the float32 inference session: same session machinery
// over the model's converted-at-load float32 serving snapshot. Draws are
// deterministic per seed but not bit-equal to the float64 path; the serving
// stack gates this width on measured q-error delta instead (DESIGN.md §1.4).
type InferSession32 = InferSessionOf[float32]

// NewInferSession creates a float64 session able to hold up to maxRows
// sampling rows.
func (m *Model) NewInferSession(maxRows int) *InferSession {
	return newInferSession(m, maxRows, m.weights64)
}

// NewInferSession32 creates a float32 session able to hold up to maxRows
// sampling rows, converting the model's weights to float32 first if no
// current snapshot exists.
func (m *Model) NewInferSession32(maxRows int) *InferSession32 {
	return newInferSession(m, maxRows, m.weights32)
}

func newInferSession[T nn.Elem](m *Model, maxRows int, reload func() *servingWeights[T]) *InferSessionOf[T] {
	if maxRows < 1 {
		maxRows = 1
	}
	maxDom := 0
	for _, d := range m.doms {
		if d > maxDom {
			maxDom = d
		}
	}
	h := m.cfg.Hidden
	s := &InferSessionOf[T]{
		m:        m,
		reload:   reload,
		pool:     nn.Default(),
		cap:      maxRows,
		tokens:   make([]int32, maxRows*m.n),
		z0:       newSessMatG[T](maxRows, h),
		h0:       newSessMatG[T](maxRows, h),
		proj:     newSessMatG[T](maxRows, m.cfg.EmbedDim),
		logits:   newSessMatG[T](maxRows, maxDom),
		maskProj: nn.NewMatG[T](m.n, h),
		maskZ:    make([]T, h),
	}
	for b := 0; b < m.cfg.Blocks; b++ {
		s.mid = append(s.mid, newSessMatG[T](maxRows, h))
		s.res = append(s.res, newSessMatG[T](maxRows, h))
	}
	if m.cfg.Blocks > 0 {
		s.topBuf = &s.res[m.cfg.Blocks-1]
	} else {
		s.topBuf = &s.h0
	}
	s.refresh()
	return s
}

// refresh re-resolves the serving weights and recomputes the weight-derived
// caches (per-column MASK projections and the all-MASK preactivation row).
func (s *InferSessionOf[T]) refresh() {
	m := s.m
	s.w = s.reload()
	s.maskProj.Zero()
	copy(s.maskZ, s.w.inB)
	for c := 0; c < m.n; c++ {
		row := s.maskProj.Row(c)
		// Row doms[c] is the MASK embedding; the masked inW block is zero
		// below prefixWidth[c], so the restricted accumulation is exact.
		s.w.addEmbProjFrom(row, c, int32(m.doms[c]), 1, m.prefixWidth[c])
		for k, v := range row[m.prefixWidth[c]:] {
			s.maskZ[m.prefixWidth[c]+k] += v
		}
	}
	s.version = m.version
}

// Cap returns the session's row capacity.
func (s *InferSessionOf[T]) Cap() int { return s.cap }

// SetSerial switches the session's kernels between the shared parallel pool
// and fully inline execution. Batch-serving workers run serial so total
// goroutine count stays at one per worker instead of workers × kernel
// chunks (the DESIGN.md §1.2 oversubscription limitation).
func (s *InferSessionOf[T]) SetSerial(on bool) {
	if on {
		s.pool = nn.Serial
	} else {
		s.pool = nn.Default()
	}
}

// Rows returns the active row count.
func (s *InferSessionOf[T]) Rows() int { return s.b }

// Reset starts a fresh sampling batch of the given row count: every token
// becomes a wildcard, the preactivation is restored to the all-MASK row, and
// the cached trunk is discarded.
func (s *InferSessionOf[T]) Reset(rows int) {
	if rows < 0 || rows > s.cap {
		panic(fmt.Sprintf("made: InferSession.Reset %d rows, capacity %d", rows, s.cap))
	}
	if s.version != s.m.version {
		s.refresh()
	}
	s.b = rows
	toks := s.tokens[:rows*s.m.n]
	for i := range toks {
		toks[i] = MaskToken
	}
	z := s.z0.view(rows)
	for r := 0; r < rows; r++ {
		copy(z.Row(r), s.maskZ)
	}
	s.validW = 0
}

// TokenRow returns row r's token vector, aliasing session storage. Callers
// must treat it as read-only; use SetToken to mutate.
func (s *InferSessionOf[T]) TokenRow(r int) []int32 {
	n := s.m.n
	return s.tokens[r*n : (r+1)*n]
}

// SetToken assigns column col of row r (MaskToken restores the wildcard),
// updating the input-layer preactivation by the embedding delta. Column
// col's masked input rows are zero below prefixWidth[col], so only the z0
// suffix from there changes — and the cached trunk prefix below it survives.
func (s *InferSessionOf[T]) SetToken(r, col int, tok int32) {
	m := s.m
	old := s.tokens[r*m.n+col]
	if old == tok {
		return
	}
	from := m.prefixWidth[col]
	zrow := s.z0.view(s.b).Row(r)
	if old < 0 {
		for k, v := range s.maskProj.Row(col)[from:] {
			zrow[from+k] -= v
		}
	} else {
		s.w.addEmbProjFrom(zrow, col, old, -1, from)
	}
	if tok < 0 {
		tok = MaskToken
		for k, v := range s.maskProj.Row(col)[from:] {
			zrow[from+k] += v
		}
	} else {
		s.w.addEmbProjFrom(zrow, col, tok, 1, from)
	}
	s.tokens[r*m.n+col] = tok
	if from < s.validW {
		s.validW = from
	}
}

// CompactRows overwrites row dst with row src (tokens, preactivation, and
// cached trunk state), the primitive behind active-row compaction: callers
// move live rows into slots freed by zero-weight rows, then Shrink. The
// trunk cache stays valid — compaction permutes rows, never values.
func (s *InferSessionOf[T]) CompactRows(dst, src int) {
	if dst == src {
		return
	}
	n := s.m.n
	copy(s.tokens[dst*n:(dst+1)*n], s.tokens[src*n:(src+1)*n])
	s.z0.copyRow(dst, src)
	if s.validW > 0 {
		s.h0.copyRowPrefix(dst, src, s.validW)
		for bi := range s.mid {
			s.mid[bi].copyRowPrefix(dst, src, s.validW)
			s.res[bi].copyRowPrefix(dst, src, s.validW)
		}
	}
}

// Shrink reduces the active row count to rows (rows ≤ current). Surviving
// rows keep their cached trunk state.
func (s *InferSessionOf[T]) Shrink(rows int) {
	if rows < 0 || rows > s.b {
		panic(fmt.Sprintf("made: InferSession.Shrink %d rows, active %d", rows, s.b))
	}
	s.b = rows
}

// Replicate fans a single-row session out to rows identical rows: tokens,
// preactivation, and cached trunk state of row 0 are copied into rows
// [1, rows). Progressive sampling runs one logical row while every sampling
// row is still bit-identical (deterministic indicator steps and the shared
// forward pass of the first stochastic column) and replicates only at the
// first per-row draw.
func (s *InferSessionOf[T]) Replicate(rows int) {
	if s.b != 1 {
		panic(fmt.Sprintf("made: InferSession.Replicate from %d rows, want 1", s.b))
	}
	if rows < 1 || rows > s.cap {
		panic(fmt.Sprintf("made: InferSession.Replicate %d rows, capacity %d", rows, s.cap))
	}
	n := s.m.n
	for r := 1; r < rows; r++ {
		copy(s.tokens[r*n:(r+1)*n], s.tokens[:n])
		s.z0.copyRow(r, 0)
		if s.validW > 0 {
			s.h0.copyRowPrefix(r, 0, s.validW)
			for bi := range s.mid {
				s.mid[bi].copyRowPrefix(r, 0, s.validW)
				s.res[bi].copyRowPrefix(r, 0, s.validW)
			}
		}
	}
	s.b = rows
}

// extendTrunk computes hidden units [lo, hi) of every trunk layer from the
// current preactivation, leaving [0, lo) untouched (those units are final —
// see the sorted-degree invariant in the type comment). Unit k of any layer
// reads only previous-layer units of degree ≤ its own, all below hi, so the
// range extension is arithmetically identical to a full prefix pass at
// width hi.
func (s *InferSessionOf[T]) extendTrunk(lo, hi int) {
	b := s.b
	z := s.z0.view(b)
	h := s.h0.view(b)
	for r := 0; r < b; r++ {
		zrow := z.Row(r)[lo:hi]
		hrow := h.Row(r)[lo:hi]
		for i, v := range zrow {
			if v > 0 {
				hrow[i] = v
			} else {
				hrow[i] = 0
			}
		}
	}
	cur := h
	for bi := range s.w.blocks {
		blk := &s.w.blocks[bi]
		a := s.mid[bi].view(b)
		if blk.w1T != nil {
			// Float32 view: transposed weights, contiguous SSE dot products
			// per extended unit (see servingBlock.w1T).
			nn.MatMulColsBT32(s.pool, any(a).(*nn.Mat32), any(cur).(*nn.Mat32),
				any(blk.w1T).(*nn.Mat32), hi, lo, hi)
		} else {
			nn.MatMulColsG(s.pool, a, cur, blk.w1, hi, lo, hi)
		}
		nn.AddBiasReluCols(a, blk.b1, b, lo, hi)
		f := s.res[bi].view(b)
		if blk.w2T != nil {
			nn.MatMulColsBT32(s.pool, any(f).(*nn.Mat32), any(a).(*nn.Mat32),
				any(blk.w2T).(*nn.Mat32), hi, lo, hi)
		} else {
			nn.MatMulColsG(s.pool, f, a, blk.w2, hi, lo, hi)
		}
		nn.AddBiasResidualCols(f, cur, blk.b2, b, lo, hi)
		cur = f
	}
}

// Probs computes p(X_col = · | current tokens) for every active row,
// returning a session-owned b × DomainSize(col) matrix of row-normalized
// probabilities (valid until the next session call). The trunk is extended
// by only the hidden units newly unmasked since the last computed boundary;
// consecutive Probs calls with no token changes reuse it entirely. Head
// masking (degree ≤ col) is the prefix restriction itself, so no separate
// masked copy of the hidden state is needed.
func (s *InferSessionOf[T]) Probs(col int) *nn.MatG[T] {
	m := s.m
	if col < 0 || col >= m.n {
		panic(fmt.Sprintf("made: InferSession.Probs column %d of %d", col, m.n))
	}
	mW := m.prefixWidth[col]
	if s.validW < mW {
		s.extendTrunk(s.validW, mW)
		s.validW = mW
	}
	top := s.topBuf.view(s.b)
	proj := s.proj.view(s.b)
	if s.w.headWT != nil {
		nn.MatMulColsBT32(s.pool, any(proj).(*nn.Mat32), any(top).(*nn.Mat32),
			any(s.w.headWT[col]).(*nn.Mat32), mW, 0, m.cfg.EmbedDim)
	} else {
		nn.MatMulSubG(s.pool, proj, top, s.w.headW[col], mW, m.cfg.EmbedDim)
	}
	out := s.logits.viewShape(s.b, m.doms[col])
	nn.MatMulBTG(s.pool, out, proj, s.w.embVw[col])
	nn.AddBiasG(s.pool, out, s.w.headB[col])
	nn.SoftmaxRowsG(s.pool, out, out)
	return out
}
