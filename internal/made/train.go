package made

import (
	"fmt"

	"neurocard/internal/nn"
)

// TrainSession is the construction-side counterpart of InferSession: a
// reusable training context over a Model that owns every buffer one gradient
// step needs — wildcard-masked input rows, the embedded input matrix, all
// trunk activations, per-head projection/logits/gradient buffers, and the
// backward scratch — preallocated once for a maximum batch size, so
// steady-state training performs no per-step allocation.
//
// Step additionally runs the prefix-structured kernels: sorted MADE degrees
// make every masked weight row nonzero only on a contiguous column suffix,
// so trunk forward (MatMulRowSuffix), weight gradients
// (MatMulATAddRowSuffix), and backward ·Wᵀ products (MatMulPrefix /
// MatMulPrefixAdd over per-step weight transposes) skip the
// structurally-zero half of every hidden matmul; head projections run over
// each column's hidden prefix (MatMulSub / MatMulATAddSub / MatMulAddCols)
// without materializing a masked hidden copy, and the optimizer applies
// clip+Adam as one fused two-pass update that skips masked parameter
// entries. Every skipped operation touches only exact zeros, so Step's
// parameter trajectory matches the reference TrainStep bit-for-bit up to
// the sign of zero.
//
// A session consumes the model's training RNG in exactly the same pattern
// as TrainStep, so interleaving or swapping the two paths preserves
// fixed-seed trajectories. Sessions are not safe for concurrent use, and at
// most one goroutine may train a given model at a time.
type TrainSession struct {
	m   *Model
	cap int

	inputs     [][]int32 // per row: the batch row, or a masked copy below
	maskedRows []int32   // cap × n backing for wildcard-masked rows
	perm       []int     // rand.Perm replica scratch
	ids        []int32   // embedding gather/scatter ids
	tgt        []int32   // per-column targets

	x       sessMat   // embedded input (cap × inDim)
	h0      sessMat   // post input layer + ReLU
	mid     []sessMat // per block: post-ReLU inner activation
	res     []sessMat // per block: block output
	dh      sessMat   // running hidden gradient
	da      sessMat   // block inner-activation gradient
	dx      sessMat   // input-embedding gradient
	proj    sessMat   // head projection (cap × EmbedDim)
	dProj   sessMat   // head projection gradient
	logits  sessMat   // head logits (cap × maxDom backing)
	dLogits sessMat   // head logits gradient

	// Per-step weight transposes: every backward ·Wᵀ product streams rows
	// of a pre-transposed weight (axpy form) instead of running dot
	// products — identical accumulation order, far better ILP and cache
	// behavior, and zero rows of the upstream gradient are skipped whole.
	inWT   *nn.Mat   // Hidden × inDim
	w1T    []*nn.Mat // per block: Hidden × Hidden
	w2T    []*nn.Mat // per block: Hidden × Hidden
	headWT []*nn.Mat // per column: EmbedDim × Hidden
	embT   []*nn.Mat // per column: EmbedDim × doms[i] (non-MASK rows)
}

// NewTrainSession creates a training session able to hold batches of up to
// maxBatch tuples.
func (m *Model) NewTrainSession(maxBatch int) *TrainSession {
	if maxBatch < 1 {
		maxBatch = 1
	}
	h := m.cfg.Hidden
	s := &TrainSession{
		m:          m,
		cap:        maxBatch,
		inputs:     make([][]int32, maxBatch),
		maskedRows: make([]int32, maxBatch*m.n),
		perm:       make([]int, m.n),
		ids:        make([]int32, maxBatch),
		tgt:        make([]int32, maxBatch),
		x:          newSessMat(maxBatch, m.inDim),
		h0:         newSessMat(maxBatch, h),
		dh:         newSessMat(maxBatch, h),
		da:         newSessMat(maxBatch, h),
		dx:         newSessMat(maxBatch, m.inDim),
		proj:       newSessMat(maxBatch, m.cfg.EmbedDim),
		dProj:      newSessMat(maxBatch, m.cfg.EmbedDim),
		logits:     newSessMat(maxBatch, m.maxDom),
		dLogits:    newSessMat(maxBatch, m.maxDom),
	}
	for b := 0; b < m.cfg.Blocks; b++ {
		s.mid = append(s.mid, newSessMat(maxBatch, h))
		s.res = append(s.res, newSessMat(maxBatch, h))
	}
	s.inWT = nn.NewMat(h, m.inDim)
	for b := 0; b < m.cfg.Blocks; b++ {
		s.w1T = append(s.w1T, nn.NewMat(h, h))
		s.w2T = append(s.w2T, nn.NewMat(h, h))
	}
	for _, d := range m.doms {
		s.headWT = append(s.headWT, nn.NewMat(m.cfg.EmbedDim, h))
		s.embT = append(s.embT, nn.NewMat(m.cfg.EmbedDim, d))
	}
	return s
}

// refreshTransposes re-materializes the transposed weights; called once per
// step (weights change every step, and the copies are tiny next to a
// batch-sized matmul).
func (s *TrainSession) refreshTransposes() {
	m := s.m
	nn.TransposeInto(s.inWT, m.inW.Val)
	for bi, blk := range m.blocks {
		nn.TransposeInto(s.w1T[bi], blk.w1.Val)
		nn.TransposeInto(s.w2T[bi], blk.w2.Val)
	}
	for i := range m.doms {
		nn.TransposeInto(s.headWT[i], m.headW[i].Val)
		nn.TransposeInto(s.embT[i], m.embedRowsView(i))
	}
}

// Cap returns the session's batch capacity.
func (s *TrainSession) Cap() int { return s.cap }

// Step performs one maximum-likelihood gradient step on a batch of token
// tuples, exactly as Model.TrainStep does (same wildcard masking, same RNG
// consumption, same objective) but through the session's preallocated
// scratch and the prefix-structured kernels. It returns the mean negative
// log-likelihood in nats per tuple.
func (s *TrainSession) Step(batch [][]int32, wildcardProb float64) float64 {
	b := len(batch)
	if b == 0 {
		return 0
	}
	if b > s.cap {
		panic(fmt.Sprintf("made: TrainSession.Step batch %d exceeds capacity %d", b, s.cap))
	}
	m := s.m

	// Wildcard-skipping masking into session-owned rows. The RNG call
	// sequence (Float64, Intn, then the Perm recurrence) replicates
	// TrainStep's use of rand.Perm so both paths share seed trajectories.
	inputs := s.inputs[:b]
	for r := range batch {
		if len(batch[r]) != m.n {
			panic(fmt.Sprintf("made: tuple has %d columns, want %d", len(batch[r]), m.n))
		}
		if wildcardProb > 0 && m.rng.Float64() < wildcardProb {
			row := s.maskedRows[r*m.n : (r+1)*m.n]
			copy(row, batch[r])
			k := m.rng.Intn(m.n + 1)
			// rand.Perm replica into reused scratch; the i = 0 iteration is
			// a no-op swap but consumes one Intn draw, exactly as the
			// standard library does (kept for stream compatibility).
			perm := s.perm
			for i := 0; i < m.n; i++ {
				j := m.rng.Intn(i + 1)
				perm[i] = perm[j]
				perm[j] = i
			}
			for _, c := range perm[:k] {
				row[c] = MaskToken
			}
			inputs[r] = row
		} else {
			inputs[r] = batch[r]
		}
	}

	loss := s.backward(inputs, batch)
	m.opt.StepClipped(m.params, m.cfg.ClipNorm)
	m.samplesSeen += b
	m.version++
	return loss
}

// embedInput fills the session's input matrix from (possibly masked) token
// rows, mapping wildcards to each column's MASK embedding row.
func (s *TrainSession) embedInput(inputs [][]int32, x *nn.Mat) {
	m := s.m
	b := len(inputs)
	ids := s.ids[:b]
	for i := 0; i < m.n; i++ {
		mask := int32(m.doms[i])
		for r := 0; r < b; r++ {
			t := inputs[r][i]
			if t < 0 {
				t = mask
			}
			ids[r] = t
		}
		nn.Gather(x, m.offsets[i], m.embeds[i].Val, ids)
	}
}

// backward runs forward + backprop over the session scratch, accumulating
// parameter gradients, and returns the mean NLL. The structure mirrors
// Model.backward; every dense masked product is replaced by its
// prefix-structured equivalent, which also keeps masked gradient entries at
// exact zero without the reference path's Hadamard re-masking pass.
func (s *TrainSession) backward(inputs, targets [][]int32) float64 {
	m := s.m
	b := len(inputs)
	s.refreshTransposes()

	// Forward trunk.
	x := s.x.view(b)
	s.embedInput(inputs, x)
	h0 := s.h0.view(b)
	nn.MatMulRowSuffix(h0, x, m.inW.Val, m.inStart)
	nn.AddBiasRelu(h0, m.inB.Val.Row(0))
	h := h0
	for bi, blk := range m.blocks {
		a := s.mid[bi].view(b)
		nn.MatMulRowSuffix(a, h, blk.w1.Val, m.hhStart)
		nn.AddBiasRelu(a, blk.b1.Val.Row(0))
		f := s.res[bi].view(b)
		nn.MatMulRowSuffix(f, a, blk.w2.Val, m.hhStart)
		nn.AddBiasResidual(f, blk.b2.Val.Row(0), h)
		h = f
	}

	// Heads: forward + backward per column, accumulating dh. The head for
	// column i reads only the hidden prefix of width prefixWidth[i], so the
	// projection and its gradients run over that prefix directly.
	dh := s.dh.view(b)
	dh.Zero()
	tgt := s.tgt[:b]
	totalLoss := 0.0
	scale := 1.0 / float64(b)
	for i := 0; i < m.n; i++ {
		pw := m.prefixWidth[i]
		proj := s.proj.view(b)
		nn.MatMulSub(proj, h, m.headW[i].Val, pw, m.cfg.EmbedDim)
		embView := m.embedRowsView(i)
		logits := s.logits.viewShape(b, m.doms[i])
		nn.MatMul(logits, proj, s.embT[i])
		nn.AddBias(logits, m.headB[i].Val.Row(0))
		for r := range targets {
			tgt[r] = targets[r][i]
		}
		dLogits := s.dLogits.viewShape(b, m.doms[i])
		totalLoss += nn.CrossEntropy(logits, tgt, dLogits)
		for j := range dLogits.Data {
			dLogits.Data[j] *= scale
		}
		// logits = proj·embᵀ + bias
		nn.BiasGradAdd(m.headB[i].Grad.Row(0), dLogits)
		dProj := s.dProj.view(b)
		nn.MatMul(dProj, dLogits, embView)
		nn.MatMulATAdd(m.embedGradView(i), dLogits, proj)
		// proj = h[:, :pw]·headW[:pw, :]
		nn.MatMulATAddSub(m.headW[i].Grad, h, dProj, pw)
		nn.MatMulAddCols(dh, dProj, s.headWT[i], pw)
	}

	// Trunk backward through residual blocks; the residual (identity) path
	// accumulation is fused into the input-gradient kernels.
	for bi := len(m.blocks) - 1; bi >= 0; bi-- {
		blk := m.blocks[bi]
		var hin *nn.Mat
		if bi == 0 {
			hin = s.h0.view(b)
		} else {
			hin = s.res[bi-1].view(b)
		}
		a := s.mid[bi].view(b)
		// f = a·W2 + b2; out = hin + f  ⇒ df = dh.
		nn.BiasGradAdd(blk.b2.Grad.Row(0), dh)
		nn.MatMulATAddRowSuffix(blk.w2.Grad, a, dh, m.hhStart)
		da := s.da.view(b)
		nn.MatMulPrefix(da, dh, s.w2T[bi], m.hhExtT)
		nn.ReluBackward(da, a)
		nn.BiasGradAdd(blk.b1.Grad.Row(0), da)
		nn.MatMulATAddRowSuffix(blk.w1.Grad, hin, da, m.hhStart)
		nn.MatMulPrefixAdd(dh, da, s.w1T[bi], m.hhExtT) // dh += da·W1ᵀ (identity path already in dh)
	}

	// Input layer backward: h0 = relu(x·inW + inB).
	nn.ReluBackward(dh, s.h0.view(b))
	nn.BiasGradAdd(m.inB.Grad.Row(0), dh)
	nn.MatMulATAddRowSuffix(m.inW.Grad, x, dh, m.inStart)
	dx := s.dx.view(b)
	nn.MatMulPrefix(dx, dh, s.inWT, m.inExtT)

	// Embedding input gradients (per column block), honoring MASK rows.
	ids := s.ids[:b]
	for i := 0; i < m.n; i++ {
		maskID := int32(m.doms[i])
		for r := 0; r < b; r++ {
			t := inputs[r][i]
			if t < 0 {
				t = maskID
			}
			ids[r] = t
		}
		nn.ScatterAddGrad(m.embeds[i].Grad, ids, dx, m.offsets[i])
	}

	// No gradient re-masking: the suffix kernels never write masked entries.
	return totalLoss / float64(b)
}
