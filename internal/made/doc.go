// Package made implements ResMADE (§3.4): a masked autoregressive MLP with
// per-column embeddings, residual blocks of masked linear layers, and
// per-column output heads tied to the input embeddings. The autoregressive
// masks guarantee that the head for column i depends only on columns < i, so
// one network represents every conditional p(X_i | x_<i) of the product-rule
// factorization (Eq. 1) simultaneously.
//
// Wildcard skipping (Naru's training-time masking) is built in: random input
// positions are replaced by a learned MASK embedding while their targets are
// kept, teaching the model the marginalized conditionals that inference uses
// to skip unconstrained columns.
//
// # Sessions
//
// The Model holds parameters and the training-step implementation; all
// steady-state compute goes through preallocated sessions. InferSession is
// the serving hot path: incremental prefix-restricted trunk passes over
// sorted MADE degrees, per-token delta updates of the input preactivation,
// lazy batch replication, and row compaction (DESIGN.md §1.1). TrainSession
// is its training counterpart, preallocating every activation, gradient,
// and transpose buffer for a fixed maximum batch (DESIGN.md §1.3). Both are
// pinned to the reference implementations by 1e-9 equivalence tests.
//
// # Serving precision
//
// Sessions are generic over the element width (nn.Elem). NewInferSession
// instantiates float64 over a view that aliases the trainable parameters
// (zero copy, always current); NewInferSession32 instantiates float32 over
// an immutable converted snapshot (weights32) built once per model version
// and shared by every session of the model — trunk and head weights are
// stored transposed (nn.ConvertT32) so the extension kernels run contiguous
// SSE dot products. Checkpoints and training are float64 regardless; the
// float32 view is rebuilt from the masters whenever the weight version
// advances (DESIGN.md §1.4).
package made
