package made

import (
	"encoding/gob"
	"fmt"
	"io"

	"neurocard/internal/nn"
)

// modelHeader is the serialized preamble.
type modelHeader struct {
	Config Config
	Doms   []int
}

// wireVersion identifies the full-precision weight stream layout written by
// EncodeInto. Bump on any change to the section order or element types.
const wireVersion = 1

// fullHeader is the preamble of the full-precision (float64) weight stream
// embedded in estimator checkpoints.
type fullHeader struct {
	WireVersion int
	Config      Config
	Doms        []int
	SamplesSeen int
}

// Save serializes the model: configuration, column domains, and all weights
// as float32 (the paper's size accounting; the precision loss is far below
// estimation noise). Optimizer state is not saved — a loaded model serves
// inference immediately and incremental training restarts Adam moments,
// which matches the paper's fast-update procedure.
func (m *Model) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(modelHeader{Config: m.cfg, Doms: m.doms}); err != nil {
		return fmt.Errorf("made: save header: %w", err)
	}
	for _, p := range m.params {
		f32 := make([]float32, len(p.Val.Data))
		for i, v := range p.Val.Data {
			f32[i] = float32(v)
		}
		if err := enc.Encode(f32); err != nil {
			return fmt.Errorf("made: save %s: %w", p.Name, err)
		}
	}
	return nil
}

// Load reconstructs a model saved by Save.
func Load(r io.Reader) (*Model, error) {
	dec := gob.NewDecoder(r)
	var hdr modelHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("made: load header: %w", err)
	}
	m, err := New(hdr.Config, hdr.Doms)
	if err != nil {
		return nil, err
	}
	for _, p := range m.params {
		var f32 []float32
		if err := dec.Decode(&f32); err != nil {
			return nil, fmt.Errorf("made: load %s: %w", p.Name, err)
		}
		if len(f32) != len(p.Val.Data) {
			return nil, fmt.Errorf("made: load %s: %d values, want %d", p.Name, len(f32), len(p.Val.Data))
		}
		for i, v := range f32 {
			p.Val.Data[i] = float64(v)
		}
	}
	// Re-apply the autoregressive masks: the serialized format carries no
	// degree-layout version, so checkpoints written under a different hidden
	// degree assignment (or with noise in masked slots) are coerced onto this
	// build's masks. InferSession's prefix-restricted trunk passes rely on
	// masked weights being exactly zero.
	nn.Hadamard(m.inW.Val, m.inW.Val, m.inMask)
	for _, blk := range m.blocks {
		nn.Hadamard(blk.w1.Val, blk.w1.Val, m.hhMask)
		nn.Hadamard(blk.w2.Val, blk.w2.Val, m.hhMask)
	}
	return m, nil
}

// EncodeInto writes the model — configuration, domains, and all weights at
// full float64 precision — onto an existing gob stream. It is the model
// section of estimator checkpoints (core.SaveCheckpoint): unlike Save's
// float32 accounting, the full-precision stream restores a model whose
// estimates are bit-identical to the original's, which is what makes
// checkpoint round-trip equivalence testable to 1e-9.
func (m *Model) EncodeInto(enc *gob.Encoder) error {
	hdr := fullHeader{
		WireVersion: wireVersion,
		Config:      m.cfg,
		Doms:        m.doms,
		SamplesSeen: m.samplesSeen,
	}
	if err := enc.Encode(hdr); err != nil {
		return fmt.Errorf("made: encode header: %w", err)
	}
	for _, p := range m.params {
		if err := enc.Encode(p.Val.Data); err != nil {
			return fmt.Errorf("made: encode %s: %w", p.Name, err)
		}
	}
	return nil
}

// DecodeFrom reconstructs a model written by EncodeInto, reading exactly the
// model section from the gob stream and leaving the decoder positioned after
// it.
func DecodeFrom(dec *gob.Decoder) (*Model, error) {
	var hdr fullHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("made: decode header: %w", err)
	}
	if hdr.WireVersion != wireVersion {
		return nil, fmt.Errorf("made: unsupported model wire version %d (want %d)", hdr.WireVersion, wireVersion)
	}
	m, err := New(hdr.Config, hdr.Doms)
	if err != nil {
		return nil, err
	}
	m.samplesSeen = hdr.SamplesSeen
	for _, p := range m.params {
		var data []float64
		if err := dec.Decode(&data); err != nil {
			return nil, fmt.Errorf("made: decode %s: %w", p.Name, err)
		}
		if len(data) != len(p.Val.Data) {
			return nil, fmt.Errorf("made: decode %s: %d values, want %d", p.Name, len(data), len(p.Val.Data))
		}
		copy(p.Val.Data, data)
	}
	// Masked slots are exactly zero in any model produced by training (the
	// masks are enforced on weights and gradients), but coerce them anyway:
	// the prefix-restricted trunk passes rely on it, and foreign streams get
	// corrected instead of silently corrupting inference.
	nn.Hadamard(m.inW.Val, m.inW.Val, m.inMask)
	for _, blk := range m.blocks {
		nn.Hadamard(blk.w1.Val, blk.w1.Val, m.hhMask)
		nn.Hadamard(blk.w2.Val, blk.w2.Val, m.hhMask)
	}
	return m, nil
}

// Config returns the model's configuration.
func (m *Model) Config() Config { return m.cfg }

// Domains returns the column domain sizes.
func (m *Model) Domains() []int { return append([]int(nil), m.doms...) }
