package made

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/nn"
)

func tinyConfig(seed int64) Config {
	return Config{EmbedDim: 3, Hidden: 8, Blocks: 1, LR: 5e-3, ClipNorm: 5, Seed: seed}
}

func randBatch(rng *rand.Rand, doms []int, n int) [][]int32 {
	out := make([][]int32, n)
	for i := range out {
		row := make([]int32, len(doms))
		for c, d := range doms {
			row[c] = int32(rng.Intn(d))
		}
		out[i] = row
	}
	return out
}

func TestNewErrors(t *testing.T) {
	if _, err := New(tinyConfig(1), nil); err == nil {
		t.Error("no columns accepted")
	}
	if _, err := New(tinyConfig(1), []int{3, 0}); err == nil {
		t.Error("zero domain accepted")
	}
	bad := tinyConfig(1)
	bad.Hidden = 0
	if _, err := New(bad, []int{3}); err == nil {
		t.Error("zero hidden accepted")
	}
}

// TestAutoregressiveProperty is the MADE invariant: the conditional for
// column i must be bit-identical when any token at position ≥ i changes.
func TestAutoregressiveProperty(t *testing.T) {
	doms := []int{3, 4, 2, 5, 3}
	m, err := New(tinyConfig(2), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	// Random weights beyond init noise: take a few training steps so all
	// parameters are non-trivial.
	for s := 0; s < 5; s++ {
		m.TrainStep(randBatch(rng, doms, 16), 0.3)
	}
	base := randBatch(rng, doms, 4)
	for col := 0; col < len(doms); col++ {
		want := nn.NewMat(len(base), doms[col])
		m.Conditional(base, col, want)
		// Perturb all positions ≥ col.
		perturbed := make([][]int32, len(base))
		for r := range base {
			row := make([]int32, len(doms))
			copy(row, base[r])
			for c := col; c < len(doms); c++ {
				row[c] = int32(rng.Intn(doms[c]))
			}
			perturbed[r] = row
		}
		got := nn.NewMat(len(base), doms[col])
		m.Conditional(perturbed, col, got)
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("col %d: conditional depends on position ≥ %d (Δ=%g)",
					col, col, got.Data[i]-want.Data[i])
			}
		}
	}
}

func TestConditionalNormalized(t *testing.T) {
	doms := []int{4, 3, 6}
	m, err := New(tinyConfig(3), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	batch := randBatch(rng, doms, 8)
	for col := range doms {
		out := nn.NewMat(len(batch), doms[col])
		m.Conditional(batch, col, out)
		for r := 0; r < out.Rows; r++ {
			sum := 0.0
			for _, v := range out.Row(r) {
				if v < 0 {
					t.Fatalf("negative probability %v", v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("col %d row %d: probs sum to %v", col, r, sum)
			}
		}
	}
}

// TestGradientCheck validates the entire ResMADE backward pass — embeddings
// (input and tied output paths), masked trunk, residual blocks, per-column
// heads — against central finite differences of the NLL.
func TestGradientCheck(t *testing.T) {
	doms := []int{3, 4, 2}
	m, err := New(tinyConfig(4), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	batch := randBatch(rng, doms, 5)
	// Include a wildcard-masked input row to exercise MASK embedding grads.
	inputs := make([][]int32, len(batch))
	for i := range batch {
		inputs[i] = append([]int32(nil), batch[i]...)
	}
	inputs[0][1] = MaskToken

	loss := m.backward(inputs, batch)
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}

	nll := func() float64 {
		// Recompute the same objective: NLL of targets given (masked) inputs.
		b := len(inputs)
		st := m.forwardTrunk(inputs)
		h := st.top()
		hm := nn.NewMat(b, m.cfg.Hidden)
		tgt := make([]int32, b)
		total := 0.0
		for i := 0; i < m.n; i++ {
			proj := nn.NewMat(b, m.cfg.EmbedDim)
			logits := nn.NewMat(b, m.doms[i])
			m.headLogits(h, i, hm, proj, logits)
			for r := range batch {
				tgt[r] = batch[r][i]
			}
			scratch := nn.NewMat(b, m.doms[i])
			total += nn.CrossEntropy(logits, tgt, scratch)
		}
		return total / float64(b)
	}

	// Entries zeroed by the autoregressive masks are enforced by projection
	// (weights and grads both zeroed), so finite differences — which probe
	// the unprojected function — do not apply to them.
	maskOf := map[*nn.Param]*nn.Mat{m.inW: m.inMask}
	for _, blk := range m.blocks {
		maskOf[blk.w1] = m.hhMask
		maskOf[blk.w2] = m.hhMask
	}

	const eps = 1e-6
	checked := 0
	for _, p := range m.params {
		for i := range p.Val.Data {
			if mask, ok := maskOf[p]; ok && mask.Data[i] == 0 {
				if p.Grad.Data[i] != 0 {
					t.Fatalf("%s[%d]: masked entry has gradient %v", p.Name, i, p.Grad.Data[i])
				}
				continue
			}
			analytic := p.Grad.Data[i]
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + eps
			up := nll()
			p.Val.Data[i] = orig - eps
			down := nll()
			p.Val.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d parameters checked", checked)
	}
}

// TestMaskedWeightsStayMasked: autoregressive zeros must survive training.
func TestMaskedWeightsStayMasked(t *testing.T) {
	doms := []int{3, 3, 3}
	m, err := New(tinyConfig(6), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for s := 0; s < 20; s++ {
		m.TrainStep(randBatch(rng, doms, 16), 0.2)
	}
	for i := range m.inW.Val.Data {
		if m.inMask.Data[i] == 0 && m.inW.Val.Data[i] != 0 {
			t.Fatal("input mask violated after training")
		}
	}
	for _, blk := range m.blocks {
		for i := range blk.w1.Val.Data {
			if m.hhMask.Data[i] == 0 && (blk.w1.Val.Data[i] != 0 || blk.w2.Val.Data[i] != 0) {
				t.Fatal("hidden mask violated after training")
			}
		}
	}
}

// TestLearnsCorrelation: X1 ≡ X0 must be captured, and the wildcard MASK
// conditional must approximate the marginal.
func TestLearnsCorrelation(t *testing.T) {
	doms := []int{2, 2}
	cfg := tinyConfig(7)
	cfg.Hidden = 16
	m, err := New(cfg, doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	for step := 0; step < 400; step++ {
		batch := make([][]int32, 64)
		for i := range batch {
			x := int32(rng.Intn(2))
			batch[i] = []int32{x, x}
		}
		m.TrainStep(batch, 0.5)
	}
	out := nn.NewMat(2, 2)
	m.Conditional([][]int32{{0, 0}, {1, 0}}, 1, out)
	if out.At(0, 0) < 0.9 {
		t.Errorf("p(X1=0|X0=0) = %v, want > 0.9", out.At(0, 0))
	}
	if out.At(1, 1) < 0.9 {
		t.Errorf("p(X1=1|X0=1) = %v, want > 0.9", out.At(1, 1))
	}
	// Wildcard on X0: conditional must be near the marginal (0.5).
	wout := nn.NewMat(1, 2)
	m.Conditional([][]int32{{MaskToken, 0}}, 1, wout)
	if math.Abs(wout.At(0, 0)-0.5) > 0.15 {
		t.Errorf("p(X1=0|X0=*) = %v, want ≈ 0.5", wout.At(0, 0))
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	doms := []int{5, 5, 5}
	m, err := New(tinyConfig(10), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	// Skewed correlated data: X1 = X0, X2 = (X0+1)%5.
	gen := func(n int) [][]int32 {
		out := make([][]int32, n)
		for i := range out {
			x := int32(rng.Intn(5))
			out[i] = []int32{x, x, (x + 1) % 5}
		}
		return out
	}
	first := m.TrainStep(gen(64), 0)
	var last float64
	for s := 0; s < 200; s++ {
		last = m.TrainStep(gen(64), 0)
	}
	if last >= first*0.7 {
		t.Errorf("loss did not drop: first %v, last %v", first, last)
	}
	if m.SamplesSeen() != 64*201 {
		t.Errorf("SamplesSeen = %d", m.SamplesSeen())
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	doms := []int{4, 6, 3}
	m, err := New(tinyConfig(11), doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for s := 0; s < 10; s++ {
		m.TrainStep(randBatch(rng, doms, 16), 0.3)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 2*m.Bytes() {
		t.Errorf("serialized size %d far exceeds reported %d", buf.Len(), m.Bytes())
	}
	m2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumParams() != m.NumParams() {
		t.Fatalf("params %d vs %d", m2.NumParams(), m.NumParams())
	}
	batch := randBatch(rng, doms, 6)
	for col := range doms {
		a := nn.NewMat(len(batch), doms[col])
		b := nn.NewMat(len(batch), doms[col])
		m.Conditional(batch, col, a)
		m2.Conditional(batch, col, b)
		for i := range a.Data {
			if math.Abs(a.Data[i]-b.Data[i]) > 1e-5 {
				t.Fatalf("col %d: loaded model diverges: %v vs %v", col, a.Data[i], b.Data[i])
			}
		}
	}
	// Loaded model supports incremental training.
	if loss := m2.TrainStep(randBatch(rng, doms, 8), 0); math.IsNaN(loss) {
		t.Error("TrainStep on loaded model returned NaN")
	}
}

func TestSingleColumnMarginal(t *testing.T) {
	m, err := New(tinyConfig(12), []int{3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	// Marginal: p(0)=0.7, p(1)=0.2, p(2)=0.1.
	probs := []float64{0.7, 0.2, 0.1}
	for s := 0; s < 300; s++ {
		batch := make([][]int32, 64)
		for i := range batch {
			u := rng.Float64()
			switch {
			case u < 0.7:
				batch[i] = []int32{0}
			case u < 0.9:
				batch[i] = []int32{1}
			default:
				batch[i] = []int32{2}
			}
		}
		m.TrainStep(batch, 0)
	}
	out := nn.NewMat(1, 3)
	m.Conditional([][]int32{{0}}, 0, out)
	for i, want := range probs {
		if math.Abs(out.At(0, i)-want) > 0.05 {
			t.Errorf("p(%d) = %v, want ≈ %v", i, out.At(0, i), want)
		}
	}
}

func TestBytesAccounting(t *testing.T) {
	m, err := New(tinyConfig(13), []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.Bytes() != m.NumParams()*4 {
		t.Errorf("Bytes = %d, want 4·%d", m.Bytes(), m.NumParams())
	}
	if m.NumCols() != 2 || m.DomainSize(1) != 20 {
		t.Error("metadata accessors wrong")
	}
}
