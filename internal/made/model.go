package made

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"neurocard/internal/nn"
)

// MaskToken marks a wildcard position in an input token vector: the model
// substitutes the column's learned MASK embedding.
const MaskToken int32 = -1

// Config sets the model architecture and optimizer.
type Config struct {
	EmbedDim int     // d_emb: per-column embedding width
	Hidden   int     // d_ff: width of the masked MLP trunk
	Blocks   int     // number of residual blocks (each two masked linears)
	LR       float64 // Adam learning rate
	ClipNorm float64 // global gradient-norm clip; 0 disables
	Seed     int64   // weight init seed
}

// DefaultConfig mirrors the paper's small JOB-light configuration scaled to
// CPU training: d_ff 128, d_emb 16.
func DefaultConfig() Config {
	return Config{EmbedDim: 16, Hidden: 128, Blocks: 2, LR: 2e-3, ClipNorm: 5, Seed: 1}
}

type resBlock struct {
	w1, b1, w2, b2 *nn.Param
}

// Model is a trainable ResMADE over n discrete columns with domain sizes
// doms[i]. Token values for column i are 0..doms[i]-1, or MaskToken.
type Model struct {
	cfg  Config
	doms []int
	n    int

	embeds []*nn.Param // (doms[i]+1) × EmbedDim; last row = MASK embedding
	inW    *nn.Param   // inDim × Hidden, pre-masked
	inB    *nn.Param   // 1 × Hidden
	blocks []*resBlock // trunk; all hidden-hidden weights share hhMask
	headW  []*nn.Param // per column: Hidden × EmbedDim (input rows masked by headKeep)
	headB  []*nn.Param // per column: 1 × doms[i]

	inMask      *nn.Mat     // inDim × Hidden autoregressive mask
	hhMask      *nn.Mat     // Hidden × Hidden
	headKeep    [][]float64 // per column: 0/1 over hidden units (m(k) ≤ i)
	prefixWidth []int       // per column: #hidden units with degree ≤ i (a prefix: degrees are sorted)

	// Suffix extent tables for the prefix-structured training kernels: with
	// sorted degrees, row j of a masked weight is nonzero exactly on columns
	// [start[j], Hidden). inStart covers inW rows, hhStart covers every
	// hidden-hidden weight's rows. The ExtT tables are the transposed duals
	// (the start tables are non-decreasing, so each transposed row's nonzero
	// columns are the prefix [0, ext)): hhExtT[k] / inExtT[k] bound the
	// active prefix of row k of Wᵀ for hidden-hidden weights and inW.
	inStart []int
	hhStart []int
	inExtT  []int
	hhExtT  []int
	maxDom  int

	offsets []int // column block offsets within the concatenated input
	inDim   int

	params []*nn.Param
	opt    *nn.Adam
	rng    *rand.Rand

	embViews     []*nn.Mat // per column: cached non-MASK rows view of embeds[i].Val
	embGradViews []*nn.Mat // per column: cached non-MASK rows view of embeds[i].Grad

	samplesSeen int // tuples consumed by TrainStep, for reporting
	version     uint64

	// w32 caches the shared float32 serving snapshot (see weights32): built
	// on first float32 session construction, refreshed when version moves.
	w32 atomic.Pointer[servingWeights[float32]]
}

// New builds a randomly initialized model for the given column domains.
func New(cfg Config, doms []int) (*Model, error) {
	if len(doms) == 0 {
		return nil, fmt.Errorf("made: no columns")
	}
	for i, d := range doms {
		if d < 1 {
			return nil, fmt.Errorf("made: column %d has domain size %d", i, d)
		}
	}
	if cfg.EmbedDim < 1 || cfg.Hidden < 1 || cfg.Blocks < 0 {
		return nil, fmt.Errorf("made: invalid config %+v", cfg)
	}
	m := &Model{
		cfg:  cfg,
		doms: append([]int(nil), doms...),
		n:    len(doms),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	m.offsets = make([]int, m.n)
	for i := range doms {
		m.offsets[i] = m.inDim
		m.inDim += cfg.EmbedDim
	}
	m.buildMasks()

	// Parameters.
	for i, d := range doms {
		e := nn.NewParam(fmt.Sprintf("emb%d", i), d+1, cfg.EmbedDim)
		e.InitNormal(m.rng, 0.1)
		m.embeds = append(m.embeds, e)
	}
	m.inW = nn.NewParam("inW", m.inDim, cfg.Hidden)
	m.inW.InitHe(m.rng, m.inDim)
	nn.Hadamard(m.inW.Val, m.inW.Val, m.inMask)
	m.inW.Suffix = m.inStart
	m.inB = nn.NewParam("inB", 1, cfg.Hidden)
	for b := 0; b < cfg.Blocks; b++ {
		blk := &resBlock{
			w1: nn.NewParam(fmt.Sprintf("blk%d.w1", b), cfg.Hidden, cfg.Hidden),
			b1: nn.NewParam(fmt.Sprintf("blk%d.b1", b), 1, cfg.Hidden),
			w2: nn.NewParam(fmt.Sprintf("blk%d.w2", b), cfg.Hidden, cfg.Hidden),
			b2: nn.NewParam(fmt.Sprintf("blk%d.b2", b), 1, cfg.Hidden),
		}
		blk.w1.InitHe(m.rng, cfg.Hidden)
		blk.w2.InitNormal(m.rng, 0.01) // near-identity residual at init
		nn.Hadamard(blk.w1.Val, blk.w1.Val, m.hhMask)
		nn.Hadamard(blk.w2.Val, blk.w2.Val, m.hhMask)
		blk.w1.Suffix = m.hhStart
		blk.w2.Suffix = m.hhStart
		m.blocks = append(m.blocks, blk)
	}
	for i, d := range doms {
		hw := nn.NewParam(fmt.Sprintf("head%d.w", i), cfg.Hidden, cfg.EmbedDim)
		hw.InitHe(m.rng, cfg.Hidden)
		m.headW = append(m.headW, hw)
		hb := nn.NewParam(fmt.Sprintf("head%d.b", i), 1, d)
		m.headB = append(m.headB, hb)
	}

	m.params = append(m.params, m.embeds...)
	m.params = append(m.params, m.inW, m.inB)
	for _, blk := range m.blocks {
		m.params = append(m.params, blk.w1, blk.b1, blk.w2, blk.b2)
	}
	m.params = append(m.params, m.headW...)
	m.params = append(m.params, m.headB...)
	m.opt = nn.NewAdam(cfg.LR)
	for i, d := range doms {
		e := m.embeds[i].Val
		m.embViews = append(m.embViews, &nn.Mat{Rows: d, Cols: e.Cols, Data: e.Data[:d*e.Cols]})
		g := m.embeds[i].Grad
		m.embGradViews = append(m.embGradViews, &nn.Mat{Rows: d, Cols: g.Cols, Data: g.Data[:d*g.Cols]})
		if d > m.maxDom {
			m.maxDom = d
		}
	}
	return m, nil
}

// buildMasks assigns MADE degrees and constructs the autoregressive masks:
// input block i has degree i+1; hidden units take degrees 1..n-1 in sorted,
// balanced order; hidden-to-hidden connects non-decreasing degrees; the head
// for column i reads only hidden units with degree ≤ i.
//
// Sorting the degrees (instead of Naru's cyclic assignment) is an exact
// reparameterization — each degree gets the same unit count, only the unit
// order changes — but it makes every "degree ≤ i" set a contiguous prefix.
// InferSession exploits that: a trunk pass serving the head of column i
// computes only the leading prefixWidth[i] units of every hidden layer,
// since all masked weights outside that block are zero.
func (m *Model) buildMasks() {
	h := m.cfg.Hidden
	maxDeg := m.n - 1
	if maxDeg < 1 {
		maxDeg = 1
	}
	degrees := make([]int, h)
	for k := range degrees {
		degrees[k] = k*maxDeg/h + 1
	}
	m.prefixWidth = make([]int, m.n)
	for i := 0; i < m.n; i++ {
		w := 0
		for w < h && degrees[w] <= i {
			w++
		}
		m.prefixWidth[i] = w
	}
	m.inMask = nn.NewMat(m.inDim, h)
	for i := 0; i < m.n; i++ {
		deg := i + 1
		for e := 0; e < m.cfg.EmbedDim; e++ {
			row := m.inMask.Row(m.offsets[i] + e)
			for k := 0; k < h; k++ {
				if degrees[k] >= deg {
					row[k] = 1
				}
			}
		}
	}
	m.hhMask = nn.NewMat(h, h)
	for j := 0; j < h; j++ {
		row := m.hhMask.Row(j)
		for k := 0; k < h; k++ {
			if degrees[k] >= degrees[j] {
				row[k] = 1
			}
		}
	}
	m.headKeep = make([][]float64, m.n)
	for i := 0; i < m.n; i++ {
		keep := make([]float64, h)
		for k := 0; k < h; k++ {
			if degrees[k] <= i {
				keep[k] = 1
			}
		}
		m.headKeep[i] = keep
	}
	// Suffix extent tables (sorted degrees ⇒ every masked row's nonzero
	// columns are a contiguous suffix). hhStart[j] is the first unit with
	// degree ≥ degrees[j]; inStart for input block i is the first unit with
	// degree ≥ i+1, which is exactly prefixWidth[i].
	m.hhStart = make([]int, h)
	for j := 0; j < h; j++ {
		s := j
		for s > 0 && degrees[s-1] >= degrees[j] {
			s--
		}
		m.hhStart[j] = s
	}
	m.inStart = make([]int, m.inDim)
	for i := 0; i < m.n; i++ {
		for e := 0; e < m.cfg.EmbedDim; e++ {
			m.inStart[m.offsets[i]+e] = m.prefixWidth[i]
		}
	}
	m.hhExtT = make([]int, h)
	for k := 0; k < h; k++ {
		ext := 0
		for ext < h && m.hhStart[ext] <= k {
			ext++
		}
		m.hhExtT[k] = ext
	}
	m.inExtT = make([]int, h)
	for k := 0; k < h; k++ {
		ext := 0
		for ext < m.inDim && m.inStart[ext] <= k {
			ext++
		}
		m.inExtT[k] = ext
	}
}

// NumCols returns the number of model columns.
func (m *Model) NumCols() int { return m.n }

// DomainSize returns the token domain size of column i.
func (m *Model) DomainSize(i int) int { return m.doms[i] }

// NumParams counts scalar parameters.
func (m *Model) NumParams() int {
	total := 0
	for _, p := range m.params {
		total += p.NumParams()
	}
	return total
}

// Bytes reports the serialized model size (float32 weights, the paper's
// accounting).
func (m *Model) Bytes() int { return m.NumParams() * 4 }

// SamplesSeen returns the number of training tuples consumed so far.
func (m *Model) SamplesSeen() int { return m.samplesSeen }

// embedInput builds the concatenated embedding matrix for a token batch.
// MaskToken (or any negative token) selects the column's MASK row.
func (m *Model) embedInput(tokens [][]int32, x *nn.Mat) {
	b := len(tokens)
	ids := make([]int32, b)
	for i := 0; i < m.n; i++ {
		mask := int32(m.doms[i]) // MASK row index
		for r := 0; r < b; r++ {
			t := tokens[r][i]
			if t < 0 {
				t = mask
			}
			ids[r] = t
		}
		nn.Gather(x, m.offsets[i], m.embeds[i].Val, ids)
	}
}

// trunk runs the masked MLP, returning the final hidden state and the
// intermediate activations needed for backprop.
type trunkState struct {
	x   *nn.Mat   // embedded input
	h0  *nn.Mat   // post input layer + ReLU
	mid []*nn.Mat // per block: post-ReLU inner activation
	hs  []*nn.Mat // per block: block output (h after residual add)
}

func (m *Model) forwardTrunk(tokens [][]int32) *trunkState {
	b := len(tokens)
	st := &trunkState{x: nn.NewMat(b, m.inDim)}
	m.embedInput(tokens, st.x)
	st.h0 = nn.NewMat(b, m.cfg.Hidden)
	nn.MatMul(st.h0, st.x, m.inW.Val)
	nn.AddBias(st.h0, m.inB.Val.Row(0))
	nn.ReluInPlace(st.h0)
	h := st.h0
	for _, blk := range m.blocks {
		a := nn.NewMat(b, m.cfg.Hidden)
		nn.MatMul(a, h, blk.w1.Val)
		nn.AddBias(a, blk.b1.Val.Row(0))
		nn.ReluInPlace(a)
		f := nn.NewMat(b, m.cfg.Hidden)
		nn.MatMul(f, a, blk.w2.Val)
		nn.AddBias(f, blk.b2.Val.Row(0))
		nn.AddInto(f, h) // residual
		st.mid = append(st.mid, a)
		st.hs = append(st.hs, f)
		h = f
	}
	return st
}

func (st *trunkState) top() *nn.Mat {
	if len(st.hs) > 0 {
		return st.hs[len(st.hs)-1]
	}
	return st.h0
}

// headLogits computes the logits of column i from the trunk output:
// mask hidden units by degree, project to embedding space, and dot with the
// (tied) embedding matrix.
func (m *Model) headLogits(h *nn.Mat, i int, hm, proj, logits *nn.Mat) {
	keep := m.headKeep[i]
	for r := 0; r < h.Rows; r++ {
		src := h.Row(r)
		dst := hm.Row(r)
		for k, kv := range keep {
			dst[k] = src[k] * kv
		}
	}
	nn.MatMul(proj, hm, m.headW[i].Val)
	embView := m.embedRowsView(i)
	nn.MatMulBT(logits, proj, embView)
	nn.AddBias(logits, m.headB[i].Val.Row(0))
}

// embedRowsView returns the first doms[i] rows of embedding i (excluding the
// MASK row) as a view sharing storage, used for tied output projections. The
// views are built once in New and alias the parameter storage, so they track
// training updates without per-call allocation.
func (m *Model) embedRowsView(i int) *nn.Mat { return m.embViews[i] }

// addEmbProj accumulates sign·(emb_c[id] · inW[block c]) into dst (length
// Hidden): the contribution of column c holding token id to the input-layer
// preactivation. inW is pre-masked, so the autoregressive structure is
// preserved. Cost is EmbedDim×Hidden — independent of the column count,
// which is what makes InferSession's incremental updates cheap.
func (m *Model) addEmbProj(dst []float64, c int, id int32, sign float64) {
	m.addEmbProjFrom(dst, c, id, sign, 0)
}

// addEmbProjFrom is addEmbProj restricted to hidden units [from, Hidden).
// Column c's masked inW rows are zero below prefixWidth[c], so callers that
// pass from = prefixWidth[c] skip the structurally-zero prefix without
// changing any computed value — the inference session's SetToken path, where
// late (indicator/fanout) columns touch only a short suffix.
func (m *Model) addEmbProjFrom(dst []float64, c int, id int32, sign float64, from int) {
	emb := m.embeds[c].Val.Row(int(id))
	base := m.offsets[c]
	sub := dst[from:]
	for j, ev := range emb {
		v := ev * sign
		if v == 0 {
			continue
		}
		wrow := m.inW.Val.Row(base + j)[from:]
		for k, wv := range wrow {
			sub[k] += v * wv
		}
	}
}

// Version counts weight updates; inference sessions use it to invalidate
// cached weight-derived state after training.
func (m *Model) Version() uint64 { return m.version }

// embedGradView returns the first doms[i] rows of embedding gradient i
// (excluding the MASK row); like embedRowsView, the views are built once and
// alias the parameter storage.
func (m *Model) embedGradView(i int) *nn.Mat { return m.embGradViews[i] }

// Conditional computes p(X_col = · | x_<col>) for every row of tokens,
// writing row-normalized probabilities into out (len(tokens) × doms[col]).
// Token values at positions ≥ col are ignored by construction of the
// autoregressive masks; wildcard positions < col must carry MaskToken.
func (m *Model) Conditional(tokens [][]int32, col int, out *nn.Mat) {
	if col < 0 || col >= m.n {
		panic(fmt.Sprintf("made: Conditional column %d of %d", col, m.n))
	}
	b := len(tokens)
	if out.Rows != b || out.Cols != m.doms[col] {
		panic("made: Conditional output dimension mismatch")
	}
	st := m.forwardTrunk(tokens)
	h := st.top()
	hm := nn.NewMat(b, m.cfg.Hidden)
	proj := nn.NewMat(b, m.cfg.EmbedDim)
	m.headLogits(h, col, hm, proj, out)
	nn.SoftmaxRows(out, out)
}

// TrainStep performs one maximum-likelihood gradient step on a batch of
// token tuples. wildcardProb is the per-tuple probability of applying
// wildcard-skipping masking (a uniform number of random positions replaced
// by MASK at the input only). It returns the mean negative log-likelihood in
// nats per tuple (loss over all columns).
func (m *Model) TrainStep(batch [][]int32, wildcardProb float64) float64 {
	b := len(batch)
	if b == 0 {
		return 0
	}
	// Build masked inputs; targets always keep the true tokens.
	inputs := make([][]int32, b)
	for r := range batch {
		if len(batch[r]) != m.n {
			panic(fmt.Sprintf("made: tuple has %d columns, want %d", len(batch[r]), m.n))
		}
		if wildcardProb > 0 && m.rng.Float64() < wildcardProb {
			row := make([]int32, m.n)
			copy(row, batch[r])
			k := m.rng.Intn(m.n + 1)
			for _, c := range m.rng.Perm(m.n)[:k] {
				row[c] = MaskToken
			}
			inputs[r] = row
		} else {
			inputs[r] = batch[r]
		}
	}

	loss := m.backward(inputs, batch)
	if m.cfg.ClipNorm > 0 {
		nn.ClipGradNorm(m.params, m.cfg.ClipNorm)
	}
	m.opt.Step(m.params)
	m.samplesSeen += b
	m.version++
	return loss
}

// NLL returns the mean negative log-likelihood (nats per tuple) of a batch
// without updating the model. Intended for monitoring and tests. Head
// scratch (projection, logits, gradient sink) is allocated once and resized
// per column instead of reallocated n times, and the head projection runs
// over the column's hidden prefix directly — no masked hidden copy.
func (m *Model) NLL(batch [][]int32) float64 {
	b := len(batch)
	if b == 0 {
		return 0
	}
	st := m.forwardTrunk(batch)
	h := st.top()
	targets := make([]int32, b)
	proj := nn.NewMat(b, m.cfg.EmbedDim)
	logitsBuf := newSessMat(b, m.maxDom)
	sinkBuf := newSessMat(b, m.maxDom)
	total := 0.0
	for i := 0; i < m.n; i++ {
		nn.MatMulSub(proj, h, m.headW[i].Val, m.prefixWidth[i], m.cfg.EmbedDim)
		logits := logitsBuf.viewShape(b, m.doms[i])
		nn.MatMulBT(logits, proj, m.embedRowsView(i))
		nn.AddBias(logits, m.headB[i].Val.Row(0))
		for r := range batch {
			targets[r] = batch[r][i]
		}
		total += nn.CrossEntropy(logits, targets, sinkBuf.viewShape(b, m.doms[i]))
	}
	return total / float64(b)
}

// backward runs forward + backprop for inputs (possibly wildcard-masked)
// against targets, accumulating parameter gradients, and returns the mean
// NLL. It does not update parameters.
func (m *Model) backward(inputs, targets [][]int32) float64 {
	b := len(inputs)
	st := m.forwardTrunk(inputs)
	h := st.top()
	dh := nn.NewMat(b, m.cfg.Hidden)
	hm := nn.NewMat(b, m.cfg.Hidden)
	tgt := make([]int32, b)
	totalLoss := 0.0

	// Heads: forward + backward per column, accumulating dh.
	for i := 0; i < m.n; i++ {
		proj := nn.NewMat(b, m.cfg.EmbedDim)
		logits := nn.NewMat(b, m.doms[i])
		m.headLogits(h, i, hm, proj, logits)
		for r := range targets {
			tgt[r] = targets[r][i]
		}
		dLogits := nn.NewMat(b, m.doms[i])
		totalLoss += nn.CrossEntropy(logits, tgt, dLogits)
		scale := 1.0 / float64(b)
		for j := range dLogits.Data {
			dLogits.Data[j] *= scale
		}
		// logits = proj·embᵀ + bias
		nn.BiasGradAdd(m.headB[i].Grad.Row(0), dLogits)
		embView := m.embedRowsView(i)
		dProj := nn.NewMat(b, m.cfg.EmbedDim)
		nn.MatMul(dProj, dLogits, embView)
		nn.MatMulATAdd(m.embedGradView(i), dLogits, proj)
		// proj = (h∘keep)·headW; hm still holds h∘keep from headLogits.
		keep := m.headKeep[i]
		nn.MatMulATAdd(m.headW[i].Grad, hm, dProj)
		dhPart := nn.NewMat(b, m.cfg.Hidden)
		nn.MatMulBT(dhPart, dProj, m.headW[i].Val)
		for r := 0; r < b; r++ {
			dstRow := dh.Row(r)
			srcRow := dhPart.Row(r)
			for k, kv := range keep {
				dstRow[k] += srcRow[k] * kv
			}
		}
	}

	// Trunk backward through residual blocks.
	for bi := len(m.blocks) - 1; bi >= 0; bi-- {
		blk := m.blocks[bi]
		var hin *nn.Mat
		if bi == 0 {
			hin = st.h0
		} else {
			hin = st.hs[bi-1]
		}
		a := st.mid[bi]
		// f = a·W2 + b2; out = hin + f  ⇒ df = dh.
		nn.BiasGradAdd(blk.b2.Grad.Row(0), dh)
		nn.MatMulATAdd(blk.w2.Grad, a, dh)
		da := nn.NewMat(b, m.cfg.Hidden)
		nn.MatMulBT(da, dh, blk.w2.Val)
		nn.ReluBackward(da, a)
		nn.BiasGradAdd(blk.b1.Grad.Row(0), da)
		nn.MatMulATAdd(blk.w1.Grad, hin, da)
		dhin := nn.NewMat(b, m.cfg.Hidden)
		nn.MatMulBT(dhin, da, blk.w1.Val)
		nn.AddInto(dh, dhin) // dh (identity path) + dhin ⇒ reuse dh as dhin total
	}

	// Input layer backward: h0 = relu(x·inW + inB).
	nn.ReluBackward(dh, st.h0)
	nn.BiasGradAdd(m.inB.Grad.Row(0), dh)
	nn.MatMulATAdd(m.inW.Grad, st.x, dh)
	dx := nn.NewMat(b, m.inDim)
	nn.MatMulBT(dx, dh, m.inW.Val)

	// Embedding input gradients (per column block), honoring MASK rows.
	ids := make([]int32, b)
	for i := 0; i < m.n; i++ {
		maskID := int32(m.doms[i])
		for r := 0; r < b; r++ {
			t := inputs[r][i]
			if t < 0 {
				t = maskID
			}
			ids[r] = t
		}
		nn.ScatterAddGrad(m.embeds[i].Grad, ids, dx, m.offsets[i])
	}

	// Enforce autoregressive masks on gradients before the update.
	nn.Hadamard(m.inW.Grad, m.inW.Grad, m.inMask)
	for _, blk := range m.blocks {
		nn.Hadamard(blk.w1.Grad, blk.w1.Grad, m.hhMask)
		nn.Hadamard(blk.w2.Grad, blk.w2.Grad, m.hhMask)
	}
	// Head weights: zero rows of dropped hidden units (grad already zero
	// there because hm is zero, so no extra masking is required).

	return totalLoss / float64(b)
}
