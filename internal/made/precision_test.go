package made

import (
	"math"
	"math/rand"
	"testing"
)

// TestInferSession32TracksFloat64 drives a float32 session and a float64
// session through the identical token schedule and compares every conditional
// head. There are no random draws in this path — Probs is a deterministic
// forward pass — so the only divergence is float32 rounding through the
// trunk, which for CI-scale models stays orders of magnitude below the 1e-3
// bound asserted here. Distributions must also still normalize.
func TestInferSession32TracksFloat64(t *testing.T) {
	doms := []int{6, 3, 2, 8, 4}
	cfg := DefaultConfig()
	cfg.Hidden = 24
	cfg.EmbedDim = 6
	cfg.Blocks = 2
	cfg.Seed = 11
	m, err := New(cfg, doms)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	s64 := m.NewInferSession(16)
	s32 := m.NewInferSession32(16)

	for batch := 0; batch < 2; batch++ {
		b := 4 + batch*6
		s64.Reset(b)
		s32.Reset(b)
		for col := 0; col < m.NumCols(); col++ {
			p64 := s64.Probs(col)
			p32 := s32.Probs(col)
			if p32.Rows != p64.Rows || p32.Cols != p64.Cols {
				t.Fatalf("col %d: float32 Probs %dx%d, float64 %dx%d",
					col, p32.Rows, p32.Cols, p64.Rows, p64.Cols)
			}
			for r := 0; r < p64.Rows; r++ {
				var sum float64
				for c := 0; c < p64.Cols; c++ {
					v32 := float64(p32.At(r, c))
					sum += v32
					if d := math.Abs(v32 - p64.At(r, c)); d > 1e-3 {
						t.Fatalf("col %d row %d tok %d: float32 prob %v vs float64 %v (|Δ| = %g)",
							col, r, c, v32, p64.At(r, c), d)
					}
				}
				if math.Abs(sum-1) > 1e-4 {
					t.Fatalf("col %d row %d: float32 probs sum to %v", col, r, sum)
				}
			}
			// Same schedule on both widths: tokens, wildcards, and a mid-pass
			// compaction, the access pattern progressive sampling uses.
			for r := 0; r < b; r++ {
				if rng.Float64() < 0.3 {
					continue
				}
				tok := int32(rng.Intn(doms[col]))
				s64.SetToken(r, col, tok)
				s32.SetToken(r, col, tok)
			}
			if col == 1 && b > 2 {
				s64.CompactRows(0, b-1)
				s32.CompactRows(0, b-1)
			}
		}
	}
}

// TestWeights32SnapshotTracksVersion checks the conversion-at-load contract:
// the float32 serving weights are an immutable snapshot, rebuilt (not
// mutated) when the float64 masters move. A session created before a weight
// update must refresh onto the new snapshot.
func TestWeights32SnapshotTracksVersion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hidden = 16
	cfg.EmbedDim = 4
	cfg.Seed = 3
	m, err := New(cfg, []int{5, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	w1 := m.weights32()
	if w2 := m.weights32(); w2 != w1 {
		t.Fatal("weights32 rebuilt without a version change")
	}
	// Perturb a master parameter the way a training step would.
	m.params[0].Val.Data[0] += 0.25
	m.version++
	w2 := m.weights32()
	if w2 == w1 {
		t.Fatal("weights32 snapshot not rebuilt after a version change")
	}
	s := m.NewInferSession32(4)
	s.Reset(2)
	_ = s.Probs(0) // must run on the refreshed snapshot without panicking
}
