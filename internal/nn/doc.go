// Package nn is the from-scratch neural-network kernel library NeuroCard's
// deep autoregressive model is built on: dense matrices, (masked) linear
// layers, embeddings, ReLU, softmax/cross-entropy, and the Adam optimizer
// with gradient clipping. All operations are hand-derived forward/backward
// pairs validated against finite differences; matrix products parallelize
// across a persistent worker pool (see Pool), and sessions that must not
// oversubscribe the CPU run the same kernels through the Serial pool.
//
// # Element widths
//
// Matrices and serving kernels are generic over Elem (float32 | float64).
// Mat aliases MatG[float64] — the width training, checkpoints, and the
// default serving path use — and Mat32 aliases MatG[float32], the
// reduced-precision serving width built by converting float64 weights once
// at estimator load (Convert32 row-major, ConvertT32 transposed). Each
// serving kernel exists twice:
//
//	width    training  serving kernels                entry points
//	float64  yes       matmul/sub/cols/bᵀ, bias,      Pool methods (MatMul, …)
//	                   softmax, fused epilogues       and package functions
//	float32  never     SSE2 specializations: axpy32/  same generic *G functions
//	                   dot32 assembly (simd_amd64.s), (dispatch by dynamic
//	                   exp32 softmax, transposed-     type inside), plus
//	                   weight products                Axpy32/Dot32/MatMulColsBT32
//
// The generic entry points (MatMulG, MatMulSubG, MatMulColsG, MatMulBTG,
// AddBiasG, SoftmaxRowsG, AddBiasReluCols, AddBiasResidualCols) take the
// Pool as their first parameter because Go methods cannot declare type
// parameters; the float64 Pool methods are thin wrappers over them. Inside
// each generic function the float32 instantiation dispatches to the SSE
// specializations in mat32.go (Go does not auto-vectorize, so scalar
// float32 would run no faster than float64); the float64 instantiation
// keeps the register-blocked scalar chunks and their bit-determinism
// contract. The float32 kernels answer to a different contract — measured
// golden-workload q-error, DESIGN.md §1.4 — which is what licenses the
// reassociating dot reduction and the polynomial exp32. On non-amd64
// builds the assembly falls back to pure Go (simd_generic.go) with
// identical per-element semantics. Gradient kernels (MatMulATAdd,
// BiasGradAdd, CrossEntropy) are float64-only: training never runs at
// reduced precision.
//
// # Kernel structure
//
// Kernels are written as a thin dispatch over named chunk functions: the
// serial path calls the chunk directly (no closure, no allocation), and the
// parallel path wraps it in a closure only when chunks are actually handed
// to pool workers. The hot matmuls use 4-row register blocking, which
// quarters weight-matrix memory traffic and gives four independent
// accumulation streams while preserving the scalar loop's per-element
// accumulation order exactly — the basis of the serving path's
// bit-determinism guarantees (DESIGN.md §1.2, §1.4).
//
// The paper trains its ResMADE with PyTorch on a GPU; this package is the
// substitution that keeps the estimator's statistics identical (maximum
// likelihood on the same architecture) while running on CPUs with the
// standard library only.
package nn
