package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestAxpy32MatchesScalar pins the SSE axpy against the scalar loop
// bit-for-bit across lengths that cover every unroll tail (16-wide, 4-wide,
// scalar) and misaligned slice offsets. axpy32's contract is exact scalar
// semantics per element, so equality here is ==, not a tolerance.
func TestAxpy32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 31, 32, 33, 63, 64, 67, 128, 255} {
		for off := 0; off < 3; off++ {
			buf := make([]float32, n+off)
			x := buf[off:]
			y := make([]float32, n)
			want := make([]float32, n)
			for i := range x {
				x[i] = float32(rng.NormFloat64())
				y[i] = float32(rng.NormFloat64())
				want[i] = y[i]
			}
			alpha := float32(rng.NormFloat64())
			for i, v := range x {
				want[i] += alpha * v
			}
			axpy32(alpha, x, y)
			for i := range y {
				if y[i] != want[i] {
					t.Fatalf("n=%d off=%d: y[%d] = %v, want %v", n, off, i, y[i], want[i])
				}
			}
		}
	}
}

// TestDot32MatchesScalar checks the SSE dot product against a float64
// reference. dot32 reduces in four lane groups, so it is not bit-identical
// to a scalar float32 loop — if anything it is closer to the float64 truth —
// and the bound here is the float32 accumulation error envelope.
func TestDot32MatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 3, 4, 5, 8, 15, 16, 17, 33, 64, 67, 200, 513} {
		x := make([]float32, n)
		y := make([]float32, n)
		var ref, mag float64
		for i := range x {
			x[i] = float32(rng.NormFloat64())
			y[i] = float32(rng.NormFloat64())
			ref += float64(x[i]) * float64(y[i])
			mag += math.Abs(float64(x[i]) * float64(y[i]))
		}
		got := float64(dot32(x, y))
		tol := 1e-6 * math.Max(mag, 1)
		if math.Abs(got-ref) > tol {
			t.Fatalf("n=%d: dot32 = %v, reference %v (|Δ| = %g > %g)", n, got, ref, math.Abs(got-ref), tol)
		}
	}
}

// TestExp32Accuracy bounds the polynomial exp against math.Exp over the
// softmax input range (x ≤ 0 after max subtraction) plus the clamp edges.
func TestExp32Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	check := func(x float32) {
		t.Helper()
		got := float64(exp32(x))
		want := math.Exp(float64(x))
		if want < 1.2e-38 { // below float32's min normal: flush-to-zero is fine
			if got > 1.2e-38 {
				t.Fatalf("exp32(%v) = %v, want ~%v", x, got, want)
			}
			return
		}
		if rel := math.Abs(got-want) / want; rel > 3e-7 {
			t.Fatalf("exp32(%v) = %v, want %v (rel err %g)", x, got, want, rel)
		}
	}
	for i := 0; i < 10000; i++ {
		check(-float32(rng.Float64() * 90))
	}
	for _, x := range []float32{0, -1e-8, -0.5, -1, -2, -10, -87, -88, -100, 0.5, 1, 10, 80} {
		check(x)
	}
	if v := exp32(-1000); v != 0 {
		t.Fatalf("exp32(-1000) = %v, want 0", v)
	}
	if v := exp32(1000); !math.IsInf(float64(v), 1) {
		t.Fatalf("exp32(1000) = %v, want +Inf", v)
	}
}

// TestMatMul32MatchesGeneric cross-checks every float32 SIMD matmul
// specialization against the generic scalar chunk on random shapes. The
// axpy-composed kernels promise bit identity; the dot-composed BT kernel is
// held to an accumulation-error tolerance.
func TestMatMul32MatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	randMat := func(r, c int) *Mat32 {
		m := NewMat32(r, c)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
			if rng.Float64() < 0.2 {
				m.Data[i] = 0 // exercise the sparsity skip
			}
		}
		return m
	}
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(9)
		k := 1 + rng.Intn(40)
		m := 1 + rng.Intn(40)
		a, b := randMat(n, k), randMat(k, m)

		got, want := NewMat32(n, m), NewMat32(n, m)
		matMulChunk32(got, a, b, 0, n)
		matMulChunk(want, a, b, 0, n)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("matMulChunk32 [%d]: %v != %v", i, got.Data[i], want.Data[i])
			}
		}

		kk, mm := 1+rng.Intn(k), 1+rng.Intn(m)
		matMulSubChunk32(got, a, b, kk, mm, 0, n)
		matMulSubChunk(want, a, b, kk, mm, 0, n)
		cl := rng.Intn(mm)
		matMulColsChunk32(got, a, b, kk, cl, mm, 0, n)
		matMulColsChunk(want, a, b, kk, cl, mm, 0, n)
		for i := range want.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("sub/cols 32 [%d]: %v != %v", i, got.Data[i], want.Data[i])
			}
		}

		bt := randMat(m, k)
		gotBT, wantBT := NewMat32(n, m), NewMat32(n, m)
		matMulBTChunk32(gotBT, a, bt, 0, n)
		matMulBTChunk(wantBT, a, bt, 0, n)
		for i := range wantBT.Data {
			if d := math.Abs(float64(gotBT.Data[i] - wantBT.Data[i])); d > 1e-4 {
				t.Fatalf("matMulBTChunk32 [%d]: %v vs %v", i, gotBT.Data[i], wantBT.Data[i])
			}
		}

		// Transposed-weight column-range product against the row-major
		// reference: same k/cl/ch restriction, bT rows are b's columns.
		btT := NewMat32(m, k)
		for r := 0; r < k; r++ {
			for c := 0; c < m; c++ {
				btT.Set(c, r, b.At(r, c))
			}
		}
		matMulColsBTChunk32(got, a, btT, kk, cl, mm, 0, n)
		matMulColsChunk(want, a, b, kk, cl, mm, 0, n)
		for i := range want.Data {
			if d := math.Abs(float64(got.Data[i] - want.Data[i])); d > 1e-4 {
				t.Fatalf("matMulColsBTChunk32 [%d]: %v vs %v", i, got.Data[i], want.Data[i])
			}
		}
	}
}

// TestConvertT32 pins the transposed conversion: out[c, r] == float32(src[r, c]).
func TestConvertT32(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := NewMat(7, 13)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	out := ConvertT32(src)
	if out.Rows != src.Cols || out.Cols != src.Rows {
		t.Fatalf("ConvertT32 shape %dx%d, want %dx%d", out.Rows, out.Cols, src.Cols, src.Rows)
	}
	for r := 0; r < src.Rows; r++ {
		for c := 0; c < src.Cols; c++ {
			if out.At(c, r) != float32(src.At(r, c)) {
				t.Fatalf("ConvertT32[%d,%d] = %v, want %v", c, r, out.At(c, r), float32(src.At(r, c)))
			}
		}
	}
}
