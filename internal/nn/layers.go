package nn

import (
	"math"
	"math/rand"
)

// Param is a trainable tensor: value, accumulated gradient, and Adam moment
// buffers.
type Param struct {
	Name string
	Val  *Mat
	Grad *Mat

	// Suffix, when non-nil, declares the parameter's masked sparsity
	// structure: row r is active only on columns [Suffix[r], Cols), and the
	// owner guarantees that values, gradients, and optimizer moments outside
	// that region are always exactly zero (the suffix-structured kernels
	// never write them). Adam.StepClipped skips the masked region entirely.
	Suffix []int

	m, v []float64
}

// NewParam allocates a zero-initialized parameter.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name: name,
		Val:  NewMat(rows, cols),
		Grad: NewMat(rows, cols),
		m:    make([]float64, rows*cols),
		v:    make([]float64, rows*cols),
	}
}

// InitNormal fills the parameter with N(0, std²) noise.
func (p *Param) InitNormal(rng *rand.Rand, std float64) {
	for i := range p.Val.Data {
		p.Val.Data[i] = rng.NormFloat64() * std
	}
}

// InitHe applies He initialization for a layer with the given fan-in.
func (p *Param) InitHe(rng *rand.Rand, fanIn int) {
	p.InitNormal(rng, math.Sqrt(2.0/float64(fanIn)))
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// NumParams returns the number of scalar parameters.
func (p *Param) NumParams() int { return len(p.Val.Data) }

// ReluInPlace applies max(0, x) element-wise.
func ReluInPlace(x *Mat) {
	for i, v := range x.Data {
		if v < 0 {
			x.Data[i] = 0
		}
	}
}

// ReluBackward zeroes gradient entries where the forward *output* was zero.
// out must be the post-activation tensor saved from the forward pass.
func ReluBackward(dY, out *Mat) {
	if dY.Rows != out.Rows || dY.Cols != out.Cols {
		panic("nn: ReluBackward dimension mismatch")
	}
	for i, v := range out.Data {
		if v <= 0 {
			dY.Data[i] = 0
		}
	}
}

// softmaxRowsChunk exponentiates through float64 math.Exp: on the float64
// instantiation the conversions are identity (the path stays bit-identical
// to the pre-generic kernel). The float32 instantiation is unreachable in
// practice — SoftmaxRowsG dispatches float32 to softmaxRowsChunk32 and its
// polynomial exp32 (mat32.go) — but remains a correct reference.
func softmaxRowsChunk[T Elem](dst, logits *MatG[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		src := logits.Row(i)
		out := dst.Row(i)
		maxv := T(math.Inf(-1))
		for _, v := range src {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range src {
			e := math.Exp(float64(v - maxv))
			out[j] = T(e)
			sum += e
		}
		inv := T(1 / sum)
		for j := range out {
			out[j] *= inv
		}
	}
}

// SoftmaxRowsG writes the row-wise softmax of logits into dst (may alias).
func SoftmaxRowsG[T Elem](p *Pool, dst, logits *MatG[T]) {
	if dst.Rows != logits.Rows || dst.Cols != logits.Cols {
		panic("nn: SoftmaxRows dimension mismatch")
	}
	if d32, ok := any(dst).(*Mat32); ok {
		l32 := any(logits).(*Mat32)
		if p.inline(logits.Rows) {
			softmaxRowsChunk32(d32, l32, 0, logits.Rows)
			return
		}
		p.parallelFor(logits.Rows, func(lo, hi int) { softmaxRowsChunk32(d32, l32, lo, hi) })
		return
	}
	if p.inline(logits.Rows) {
		softmaxRowsChunk(dst, logits, 0, logits.Rows)
		return
	}
	p.parallelFor(logits.Rows, func(lo, hi int) { softmaxRowsChunk(dst, logits, lo, hi) })
}

// SoftmaxRows writes the row-wise softmax of logits into dst (may alias).
func (p *Pool) SoftmaxRows(dst, logits *Mat) { SoftmaxRowsG(p, dst, logits) }

// SoftmaxRows runs on the default pool.
func SoftmaxRows(dst, logits *Mat) { SoftmaxRowsG(defaultPool, dst, logits) }

// CrossEntropy computes the summed negative log-likelihood of targets under
// row-wise softmax(logits) and fills dLogits with the unscaled gradient
// (softmax - onehot). Rows whose target is negative are skipped entirely
// (zero loss, zero gradient) — used to mask padding and wildcard positions.
// The caller divides loss and gradients by the effective batch size.
//
// The loss is reduced through per-chunk partial sums (no per-row scratch),
// so the training loop's most-called kernel performs no allocation on the
// serial path and at most one tiny chunk-sum slice when parallelized.
func crossEntropyChunk(logits *Mat, targets []int32, dLogits *Mat, lo, hi int) float64 {
	partial := 0.0
	for i := lo; i < hi; i++ {
		dst := dLogits.Row(i)
		t := targets[i]
		if t < 0 {
			for j := range dst {
				dst[j] = 0
			}
			continue
		}
		src := logits.Row(i)
		maxv := math.Inf(-1)
		for _, v := range src {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range src {
			e := math.Exp(v - maxv)
			dst[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range dst {
			dst[j] *= inv
		}
		partial += -math.Log(math.Max(dst[t], 1e-300))
		dst[t] -= 1
	}
	return partial
}

func (p *Pool) CrossEntropy(logits *Mat, targets []int32, dLogits *Mat) float64 {
	if len(targets) != logits.Rows || dLogits.Rows != logits.Rows || dLogits.Cols != logits.Cols {
		panic("nn: CrossEntropy dimension mismatch")
	}
	if p.inline(logits.Rows) {
		return crossEntropyChunk(logits, targets, dLogits, 0, logits.Rows)
	}
	return p.parallelForSum(logits.Rows, func(lo, hi int) float64 {
		return crossEntropyChunk(logits, targets, dLogits, lo, hi)
	})
}

// CrossEntropy runs on the default pool.
func CrossEntropy(logits *Mat, targets []int32, dLogits *Mat) float64 {
	return defaultPool.CrossEntropy(logits, targets, dLogits)
}

// Gather copies embedding rows table[ids[i]] into out rows at column offset
// outCol. Rows with negative ids are left untouched.
func Gather(out *Mat, outCol int, table *Mat, ids []int32) {
	d := table.Cols
	if outCol+d > out.Cols || len(ids) != out.Rows {
		panic("nn: Gather dimension mismatch")
	}
	for i, id := range ids {
		if id < 0 {
			continue
		}
		copy(out.Row(i)[outCol:outCol+d], table.Row(int(id)))
	}
}

// ScatterAddGrad accumulates dOut rows (at column offset outCol, width =
// tableGrad.Cols) into tableGrad rows selected by ids. Negative ids are
// skipped. The inverse of Gather for backpropagation.
func ScatterAddGrad(tableGrad *Mat, ids []int32, dOut *Mat, outCol int) {
	d := tableGrad.Cols
	if outCol+d > dOut.Cols || len(ids) != dOut.Rows {
		panic("nn: ScatterAddGrad dimension mismatch")
	}
	for i, id := range ids {
		if id < 0 {
			continue
		}
		dst := tableGrad.Row(int(id))
		src := dOut.Row(i)[outCol : outCol+d]
		for j, v := range src {
			dst[j] += v
		}
	}
}
