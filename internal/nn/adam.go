package nn

import "math"

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	step  int
}

// NewAdam returns an Adam optimizer with the standard (0.9, 0.999, 1e-8)
// moment configuration.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter from its accumulated gradient,
// then clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		g := p.Grad.Data
		w := p.Val.Data
		m, v := p.m, p.v
		for i, gi := range g {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mh := m[i] / c1
			vh := v[i] / c2
			w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// StepClipped fuses ClipGradNorm and Step into a single two-pass update: the
// first pass accumulates the global gradient norm, the second applies the
// (possibly rescaled) Adam update and clears the gradient in place — the
// clip never materializes rescaled gradients. maxNorm ≤ 0 disables clipping
// (scale 1, returned norm 0, and the norm pass is skipped entirely).
//
// Parameters with a Suffix table skip their masked-zero entries in both
// passes: those entries have zero gradient and zero moments by construction
// (see Param.Suffix), so their Adam update is exactly zero and skipping them
// is bit-identical to the dense update.
//
// The result is bit-identical to ClipGradNorm followed by Step: the update
// consumes g·scale exactly as the sequential pair stores and reloads it.
func (a *Adam) StepClipped(params []*Param, maxNorm float64) float64 {
	scale, norm := 1.0, 0.0
	if maxNorm > 0 {
		sum := 0.0
		for _, p := range params {
			g := p.Grad.Data
			if p.Suffix == nil {
				for _, gi := range g {
					sum += gi * gi
				}
				continue
			}
			cols := p.Grad.Cols
			for r, s := range p.Suffix {
				for _, gi := range g[r*cols+s : (r+1)*cols] {
					sum += gi * gi
				}
			}
		}
		norm = math.Sqrt(sum)
		if norm > maxNorm && norm > 0 {
			scale = maxNorm / norm
		}
	}

	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		g := p.Grad.Data
		w := p.Val.Data
		m, v := p.m, p.v
		update := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gi := g[i] * scale
				m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
				v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
				mh := m[i] / c1
				vh := v[i] / c2
				w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
				g[i] = 0
			}
		}
		if p.Suffix == nil {
			update(0, len(g))
			continue
		}
		cols := p.Grad.Cols
		for r, s := range p.Suffix {
			update(r*cols+s, (r+1)*cols)
		}
	}
	return norm
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	sum := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sum += g * g
		}
	}
	norm := math.Sqrt(sum)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}
