package nn

import "math"

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR    float64
	Beta1 float64
	Beta2 float64
	Eps   float64
	step  int
}

// NewAdam returns an Adam optimizer with the standard (0.9, 0.999, 1e-8)
// moment configuration.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step applies one update to every parameter from its accumulated gradient,
// then clears the gradients.
func (a *Adam) Step(params []*Param) {
	a.step++
	c1 := 1 - math.Pow(a.Beta1, float64(a.step))
	c2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for _, p := range params {
		g := p.Grad.Data
		w := p.Val.Data
		m, v := p.m, p.v
		for i, gi := range g {
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*gi
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*gi*gi
			mh := m[i] / c1
			vh := v[i] / c2
			w[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.step }

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, returning the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	sum := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data {
			sum += g * g
		}
	}
	norm := math.Sqrt(sum)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] *= scale
			}
		}
	}
	return norm
}
