// Package nn is the from-scratch neural-network kernel library NeuroCard's
// deep autoregressive model is built on: dense matrices, (masked) linear
// layers, embeddings, ReLU, softmax/cross-entropy, and the Adam optimizer
// with gradient clipping. All operations are hand-derived forward/backward
// pairs validated against finite differences; matrix products parallelize
// across a persistent worker pool (see Pool), and sessions that must not
// oversubscribe the CPU run the same kernels through the Serial pool.
//
// Kernels are written as a thin dispatch over named chunk functions: the
// serial path calls the chunk directly (no closure, no allocation), and the
// parallel path wraps it in a closure only when chunks are actually handed
// to pool workers. The hot matmuls use 4-row register blocking, which
// quarters weight-matrix memory traffic and gives four independent
// accumulation streams while preserving the scalar loop's per-element
// accumulation order exactly.
//
// The paper trains its ResMADE with PyTorch on a GPU; this package is the
// substitution that keeps the estimator's statistics identical (maximum
// likelihood on the same architecture) while running on CPUs with the
// standard library only.
package nn

import "fmt"

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Mat) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src into m (dimensions must match).
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("nn: CopyFrom %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	copy(m.Data, src.Data)
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

func matMulChunk(dst, a, b *Mat, lo, hi int) {
	i := lo
	// 4-row register blocking: each loaded row of b updates four output
	// rows, quartering b's memory traffic and giving four independent
	// accumulation streams. Per-element accumulation order (ascending k,
	// rows independent) matches the scalar loop exactly.
	for ; i+4 <= hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for k, av0 := range a0 {
			av1, av2, av3 := a1[k], a2[k], a3[k]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue // ReLU activations are often sparse
			}
			brow := b.Row(k)
			e0 := d0[:len(brow)]
			e1 := d1[:len(brow)]
			e2 := d2[:len(brow)]
			e3 := d3[:len(brow)]
			for j, bv := range brow {
				e0[j] += av0 * bv
				e1[j] += av1 * bv
				e2[j] += av2 * bv
				e3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			dsub := drow[:len(brow)]
			for j, bv := range brow {
				dsub[j] += av * bv
			}
		}
	}
}

// MatMul sets dst = a·b. dst must be a.Rows × b.Cols and distinct from a, b.
func (p *Pool) MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMul dims %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if p.inline(a.Rows) {
		matMulChunk(dst, a, b, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulChunk(dst, a, b, lo, hi) })
}

// MatMul sets dst = a·b on the default pool.
func MatMul(dst, a, b *Mat) { defaultPool.MatMul(dst, a, b) }

func matMulSubChunk(dst, a, b *Mat, k, m, lo, hi int) {
	i := lo
	// 4-row register blocking (see matMulChunk).
	for ; i+4 <= hi; i += 4 {
		a0 := a.Row(i)[:k]
		a1 := a.Row(i + 1)[:k]
		a2 := a.Row(i + 2)[:k]
		a3 := a.Row(i + 3)[:k]
		d0 := dst.Row(i)[:m]
		d1 := dst.Row(i + 1)[:m]
		d2 := dst.Row(i + 2)[:m]
		d3 := dst.Row(i + 3)[:m]
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for j, av0 := range a0 {
			av1, av2, av3 := a1[j], a2[j], a3[j]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b.Row(j)[:m]
			for c, bv := range brow {
				d0[c] += av0 * bv
				d1[c] += av1 * bv
				d2[c] += av2 * bv
				d3[c] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)[:m]
		for j := range drow {
			drow[j] = 0
		}
		for j, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(j)[:m]
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// MatMulSub sets the leading m columns of dst to a[:, :k]·b[:k, :m],
// leaving columns ≥ m of dst untouched. All matrices keep their full
// row-major layout; only row slices are restricted, so no copies are made.
// Used by inference sessions to run MADE trunk passes over the contiguous
// "degree ≤ col" prefix — entries outside the prefix multiply masked-zero
// weights and are skipped instead of computed — and by training sessions to
// project head inputs without materializing a masked hidden copy.
func (p *Pool) MatMulSub(dst, a, b *Mat, k, m int) {
	if k > a.Cols || k > b.Rows || m > b.Cols || m > dst.Cols || dst.Rows != a.Rows {
		panic(fmt.Sprintf("nn: MatMulSub dims %dx%d[:%d] · %dx%d[:%d,:%d] -> %dx%d",
			a.Rows, a.Cols, k, b.Rows, b.Cols, k, m, dst.Rows, dst.Cols))
	}
	if p.inline(a.Rows) {
		matMulSubChunk(dst, a, b, k, m, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulSubChunk(dst, a, b, k, m, lo, hi) })
}

// MatMulSub runs the prefix-restricted product on the default pool.
func MatMulSub(dst, a, b *Mat, k, m int) { defaultPool.MatMulSub(dst, a, b, k, m) }

func matMulColsChunk(dst, a, b *Mat, k, cl, ch, lo, hi int) {
	w := ch - cl
	i := lo
	// 4-row register blocking (see matMulChunk).
	for ; i+4 <= hi; i += 4 {
		a0 := a.Row(i)[:k]
		a1 := a.Row(i + 1)[:k]
		a2 := a.Row(i + 2)[:k]
		a3 := a.Row(i + 3)[:k]
		d0 := dst.Row(i)[cl:][:w]
		d1 := dst.Row(i + 1)[cl:][:w]
		d2 := dst.Row(i + 2)[cl:][:w]
		d3 := dst.Row(i + 3)[cl:][:w]
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for j, av0 := range a0 {
			av1, av2, av3 := a1[j], a2[j], a3[j]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b.Row(j)[cl:][:w]
			for c, bv := range brow {
				d0[c] += av0 * bv
				d1[c] += av1 * bv
				d2[c] += av2 * bv
				d3[c] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)[cl:][:w]
		for j := range drow {
			drow[j] = 0
		}
		for j, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(j)[cl:][:w]
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// MatMulCols sets the column range [cl, ch) of dst to a[:, :k]·b[:k, cl:ch),
// leaving every other column of dst untouched. Per output element the
// accumulation runs over ascending k exactly as MatMulSub, so the computed
// columns are bit-identical to a full MatMulSub(dst, a, b, k, ch) pass.
// Inference sessions use it to extend a cached trunk by only the hidden
// units newly unmasked since the previous sampling step.
func (p *Pool) MatMulCols(dst, a, b *Mat, k, cl, ch int) {
	if k > a.Cols || k > b.Rows || cl < 0 || cl > ch || ch > b.Cols || ch > dst.Cols || dst.Rows != a.Rows {
		panic(fmt.Sprintf("nn: MatMulCols dims %dx%d[:%d] · %dx%d[%d:%d] -> %dx%d",
			a.Rows, a.Cols, k, b.Rows, b.Cols, cl, ch, dst.Rows, dst.Cols))
	}
	if cl == ch {
		return
	}
	if p.inline(a.Rows) {
		matMulColsChunk(dst, a, b, k, cl, ch, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulColsChunk(dst, a, b, k, cl, ch, lo, hi) })
}

// MatMulCols runs the column-range product on the default pool.
func MatMulCols(dst, a, b *Mat, k, cl, ch int) { defaultPool.MatMulCols(dst, a, b, k, cl, ch) }

// AddBiasSub adds bias[:m] to the leading m columns of every row of x.
func AddBiasSub(x *Mat, bias []float64, m int) {
	if m > x.Cols || m > len(bias) {
		panic("nn: AddBiasSub length mismatch")
	}
	b := bias[:m]
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)[:m]
		for j, v := range b {
			row[j] += v
		}
	}
}

func matMulATAddChunk(dst, a, b *Mat, lo, hi int) {
	k := 0
	// 4-batch-row blocking: four outer products accumulate per pass over
	// the gradient, as sequential adds (ascending-k order preserved),
	// quartering gradient-matrix memory traffic.
	for ; k+4 <= a.Rows; k += 4 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		for i := lo; i < hi; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			drow := dst.Row(i)[:len(b0)]
			c1 := b1[:len(drow)]
			c2 := b2[:len(drow)]
			c3 := b3[:len(drow)]
			for j, bv := range b0 {
				drow[j] += av0 * bv
				drow[j] += av1 * c1[j]
				drow[j] += av2 * c2[j]
				drow[j] += av3 * c3[j]
			}
		}
	}
	for ; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATAdd accumulates dst += aᵀ·b. dst must be a.Cols × b.Cols. Used for
// weight gradients (dW += Xᵀ·dY), which accumulate across calls.
func (p *Pool) MatMulATAdd(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulATAdd dims %dx%dᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if p.inline(a.Cols) {
		matMulATAddChunk(dst, a, b, 0, a.Cols)
		return
	}
	p.parallelFor(a.Cols, func(lo, hi int) { matMulATAddChunk(dst, a, b, lo, hi) })
}

// MatMulATAdd accumulates dst += aᵀ·b on the default pool.
func MatMulATAdd(dst, a, b *Mat) { defaultPool.MatMulATAdd(dst, a, b) }

func matMulBTChunk(dst, a, b *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			sum := 0.0
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// MatMulBT sets dst = a·bᵀ. dst must be a.Rows × b.Rows. Used for input
// gradients (dX = dY·Wᵀ) when no pre-transposed weight is available.
func (p *Pool) MatMulBT(dst, a, b *Mat) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMulBT dims %dx%d · %dx%dᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if p.inline(a.Rows) {
		matMulBTChunk(dst, a, b, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulBTChunk(dst, a, b, lo, hi) })
}

// MatMulBT sets dst = a·bᵀ on the default pool.
func MatMulBT(dst, a, b *Mat) { defaultPool.MatMulBT(dst, a, b) }

func addBiasChunk(x *Mat, bias []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := x.Row(i)
		for j, b := range bias {
			row[j] += b
		}
	}
}

// AddBias adds bias (length x.Cols) to every row of x in place.
func (p *Pool) AddBias(x *Mat, bias []float64) {
	if len(bias) != x.Cols {
		panic("nn: AddBias length mismatch")
	}
	if p.inline(x.Rows) {
		addBiasChunk(x, bias, 0, x.Rows)
		return
	}
	p.parallelFor(x.Rows, func(lo, hi int) { addBiasChunk(x, bias, lo, hi) })
}

// AddBias adds bias to every row of x on the default pool.
func AddBias(x *Mat, bias []float64) { defaultPool.AddBias(x, bias) }

// BiasGradAdd accumulates column sums of dY into grad (the bias gradient).
func BiasGradAdd(grad []float64, dY *Mat) {
	if len(grad) != dY.Cols {
		panic("nn: BiasGradAdd length mismatch")
	}
	for i := 0; i < dY.Rows; i++ {
		row := dY.Row(i)
		for j, v := range row {
			grad[j] += v
		}
	}
}

// AddInto sets dst += src element-wise.
func AddInto(dst, src *Mat) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("nn: AddInto dimension mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// Hadamard sets dst = a∘b element-wise. dst may alias a or b.
func Hadamard(dst, a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("nn: Hadamard dimension mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}
