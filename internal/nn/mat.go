package nn

import "fmt"

// Elem constrains the floating-point element types the kernel set is
// instantiated over. Training always runs float64; serving may select
// float32 (see MatG and the *G kernel entry points).
type Elem interface {
	~float32 | ~float64
}

// MatG is a dense row-major matrix over element type T. All kernels are
// generic over Elem and dual-instantiated: the float64 instantiation is the
// training and default serving path, the float32 instantiation is the
// reduced-precision serving path. Go stencils each value-type instantiation
// into its own machine code, so neither width pays an abstraction cost.
type MatG[T Elem] struct {
	Rows, Cols int
	Data       []T
}

// Mat is a dense row-major float64 matrix — the element width used by
// training and the default serving path.
type Mat = MatG[float64]

// Mat32 is a dense row-major float32 matrix — the reduced-precision serving
// width. Checkpoints never store Mat32; it exists only as converted-at-load
// serving weights and session activations.
type Mat32 = MatG[float32]

// NewMat allocates a zeroed Rows×Cols float64 matrix.
func NewMat(rows, cols int) *Mat { return NewMatG[float64](rows, cols) }

// NewMat32 allocates a zeroed Rows×Cols float32 matrix.
func NewMat32(rows, cols int) *Mat32 { return NewMatG[float32](rows, cols) }

// NewMatG allocates a zeroed Rows×Cols matrix of element type T.
func NewMatG[T Elem](rows, cols int) *MatG[T] {
	return &MatG[T]{Rows: rows, Cols: cols, Data: make([]T, rows*cols)}
}

// At returns element (r, c).
func (m *MatG[T]) At(r, c int) T { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *MatG[T]) Set(r, c int, v T) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *MatG[T]) Row(r int) []T { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero clears all elements.
func (m *MatG[T]) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src into m (dimensions must match).
func (m *MatG[T]) CopyFrom(src *MatG[T]) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("nn: CopyFrom %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	copy(m.Data, src.Data)
}

// Clone returns a deep copy.
func (m *MatG[T]) Clone() *MatG[T] {
	out := NewMatG[T](m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Convert32 returns a freshly allocated float32 copy of a float64 matrix —
// the conversion-at-load step that builds serving weights. Each element is
// rounded once (round-to-nearest-even); see DESIGN.md §1.4 for the error
// model.
func Convert32(src *Mat) *Mat32 {
	out := NewMat32(src.Rows, src.Cols)
	for i, v := range src.Data {
		out.Data[i] = float32(v)
	}
	return out
}

func matMulChunk[T Elem](dst, a, b *MatG[T], lo, hi int) {
	i := lo
	// 4-row register blocking: each loaded row of b updates four output
	// rows, quartering b's memory traffic and giving four independent
	// accumulation streams. Per-element accumulation order (ascending k,
	// rows independent) matches the scalar loop exactly.
	for ; i+4 <= hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for k, av0 := range a0 {
			av1, av2, av3 := a1[k], a2[k], a3[k]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue // ReLU activations are often sparse
			}
			brow := b.Row(k)
			e0 := d0[:len(brow)]
			e1 := d1[:len(brow)]
			e2 := d2[:len(brow)]
			e3 := d3[:len(brow)]
			for j, bv := range brow {
				e0[j] += av0 * bv
				e1[j] += av1 * bv
				e2[j] += av2 * bv
				e3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			dsub := drow[:len(brow)]
			for j, bv := range brow {
				dsub[j] += av * bv
			}
		}
	}
}

// MatMulG sets dst = a·b over any element width. dst must be a.Rows × b.Cols
// and distinct from a, b. Generic kernels take the pool as a parameter
// because Go methods cannot have type parameters.
func MatMulG[T Elem](p *Pool, dst, a, b *MatG[T]) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMul dims %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if d32, ok := any(dst).(*Mat32); ok {
		a32, b32 := any(a).(*Mat32), any(b).(*Mat32)
		if p.inline(a.Rows) {
			matMulChunk32(d32, a32, b32, 0, a.Rows)
			return
		}
		p.parallelFor(a.Rows, func(lo, hi int) { matMulChunk32(d32, a32, b32, lo, hi) })
		return
	}
	if p.inline(a.Rows) {
		matMulChunk(dst, a, b, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulChunk(dst, a, b, lo, hi) })
}

// MatMul sets dst = a·b. dst must be a.Rows × b.Cols and distinct from a, b.
func (p *Pool) MatMul(dst, a, b *Mat) { MatMulG(p, dst, a, b) }

// MatMul sets dst = a·b on the default pool.
func MatMul(dst, a, b *Mat) { MatMulG(defaultPool, dst, a, b) }

func matMulSubChunk[T Elem](dst, a, b *MatG[T], k, m, lo, hi int) {
	i := lo
	// 4-row register blocking (see matMulChunk).
	for ; i+4 <= hi; i += 4 {
		a0 := a.Row(i)[:k]
		a1 := a.Row(i + 1)[:k]
		a2 := a.Row(i + 2)[:k]
		a3 := a.Row(i + 3)[:k]
		d0 := dst.Row(i)[:m]
		d1 := dst.Row(i + 1)[:m]
		d2 := dst.Row(i + 2)[:m]
		d3 := dst.Row(i + 3)[:m]
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for j, av0 := range a0 {
			av1, av2, av3 := a1[j], a2[j], a3[j]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b.Row(j)[:m]
			for c, bv := range brow {
				d0[c] += av0 * bv
				d1[c] += av1 * bv
				d2[c] += av2 * bv
				d3[c] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)[:m]
		for j := range drow {
			drow[j] = 0
		}
		for j, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(j)[:m]
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// MatMulSubG sets the leading m columns of dst to a[:, :k]·b[:k, :m],
// leaving columns ≥ m of dst untouched. All matrices keep their full
// row-major layout; only row slices are restricted, so no copies are made.
// Used by inference sessions to run MADE trunk passes over the contiguous
// "degree ≤ col" prefix — entries outside the prefix multiply masked-zero
// weights and are skipped instead of computed — and by training sessions to
// project head inputs without materializing a masked hidden copy.
func MatMulSubG[T Elem](p *Pool, dst, a, b *MatG[T], k, m int) {
	if k > a.Cols || k > b.Rows || m > b.Cols || m > dst.Cols || dst.Rows != a.Rows {
		panic(fmt.Sprintf("nn: MatMulSub dims %dx%d[:%d] · %dx%d[:%d,:%d] -> %dx%d",
			a.Rows, a.Cols, k, b.Rows, b.Cols, k, m, dst.Rows, dst.Cols))
	}
	if d32, ok := any(dst).(*Mat32); ok {
		a32, b32 := any(a).(*Mat32), any(b).(*Mat32)
		if p.inline(a.Rows) {
			matMulSubChunk32(d32, a32, b32, k, m, 0, a.Rows)
			return
		}
		p.parallelFor(a.Rows, func(lo, hi int) { matMulSubChunk32(d32, a32, b32, k, m, lo, hi) })
		return
	}
	if p.inline(a.Rows) {
		matMulSubChunk(dst, a, b, k, m, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulSubChunk(dst, a, b, k, m, lo, hi) })
}

// MatMulSub runs the prefix-restricted product (see MatMulSubG).
func (p *Pool) MatMulSub(dst, a, b *Mat, k, m int) { MatMulSubG(p, dst, a, b, k, m) }

// MatMulSub runs the prefix-restricted product on the default pool.
func MatMulSub(dst, a, b *Mat, k, m int) { MatMulSubG(defaultPool, dst, a, b, k, m) }

func matMulColsChunk[T Elem](dst, a, b *MatG[T], k, cl, ch, lo, hi int) {
	w := ch - cl
	i := lo
	// 4-row register blocking (see matMulChunk).
	for ; i+4 <= hi; i += 4 {
		a0 := a.Row(i)[:k]
		a1 := a.Row(i + 1)[:k]
		a2 := a.Row(i + 2)[:k]
		a3 := a.Row(i + 3)[:k]
		d0 := dst.Row(i)[cl:][:w]
		d1 := dst.Row(i + 1)[cl:][:w]
		d2 := dst.Row(i + 2)[cl:][:w]
		d3 := dst.Row(i + 3)[cl:][:w]
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for j, av0 := range a0 {
			av1, av2, av3 := a1[j], a2[j], a3[j]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b.Row(j)[cl:][:w]
			for c, bv := range brow {
				d0[c] += av0 * bv
				d1[c] += av1 * bv
				d2[c] += av2 * bv
				d3[c] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)[cl:][:w]
		for j := range drow {
			drow[j] = 0
		}
		for j, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(j)[cl:][:w]
			for c, bv := range brow {
				drow[c] += av * bv
			}
		}
	}
}

// MatMulColsG sets the column range [cl, ch) of dst to a[:, :k]·b[:k, cl:ch),
// leaving every other column of dst untouched. Per output element the
// accumulation runs over ascending k exactly as MatMulSubG, so the computed
// columns are bit-identical to a full MatMulSubG(p, dst, a, b, k, ch) pass.
// Inference sessions use it to extend a cached trunk by only the hidden
// units newly unmasked since the previous sampling step.
func MatMulColsG[T Elem](p *Pool, dst, a, b *MatG[T], k, cl, ch int) {
	if k > a.Cols || k > b.Rows || cl < 0 || cl > ch || ch > b.Cols || ch > dst.Cols || dst.Rows != a.Rows {
		panic(fmt.Sprintf("nn: MatMulCols dims %dx%d[:%d] · %dx%d[%d:%d] -> %dx%d",
			a.Rows, a.Cols, k, b.Rows, b.Cols, cl, ch, dst.Rows, dst.Cols))
	}
	if cl == ch {
		return
	}
	if d32, ok := any(dst).(*Mat32); ok {
		a32, b32 := any(a).(*Mat32), any(b).(*Mat32)
		if p.inline(a.Rows) {
			matMulColsChunk32(d32, a32, b32, k, cl, ch, 0, a.Rows)
			return
		}
		p.parallelFor(a.Rows, func(lo, hi int) { matMulColsChunk32(d32, a32, b32, k, cl, ch, lo, hi) })
		return
	}
	if p.inline(a.Rows) {
		matMulColsChunk(dst, a, b, k, cl, ch, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulColsChunk(dst, a, b, k, cl, ch, lo, hi) })
}

// MatMulCols runs the column-range product (see MatMulColsG).
func (p *Pool) MatMulCols(dst, a, b *Mat, k, cl, ch int) { MatMulColsG(p, dst, a, b, k, cl, ch) }

// MatMulCols runs the column-range product on the default pool.
func MatMulCols(dst, a, b *Mat, k, cl, ch int) { MatMulColsG(defaultPool, dst, a, b, k, cl, ch) }

// AddBiasSub adds bias[:m] to the leading m columns of every row of x.
func AddBiasSub[T Elem](x *MatG[T], bias []T, m int) {
	if m > x.Cols || m > len(bias) {
		panic("nn: AddBiasSub length mismatch")
	}
	b := bias[:m]
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)[:m]
		for j, v := range b {
			row[j] += v
		}
	}
}

// AddBiasReluCols applies dst[r, cl:ch) = max(0, dst[r, cl:ch) + bias[cl:ch))
// over the given rows — the fused bias+ReLU epilogue of a trunk extension.
// Fusing keeps the freshly computed column range in cache for exactly one
// extra pass instead of two.
func AddBiasReluCols[T Elem](dst *MatG[T], bias []T, rows, cl, ch int) {
	b := bias[cl:ch]
	for r := 0; r < rows; r++ {
		row := dst.Row(r)[cl:ch]
		for j, v := range b {
			s := row[j] + v
			if s < 0 {
				s = 0
			}
			row[j] = s
		}
	}
}

// AddBiasResidualCols applies dst[r, cl:ch) += bias[cl:ch) + res[r, cl:ch)
// over the given rows — the fused bias+residual epilogue of a ResMADE block.
func AddBiasResidualCols[T Elem](dst, res *MatG[T], bias []T, rows, cl, ch int) {
	b := bias[cl:ch]
	for r := 0; r < rows; r++ {
		row := dst.Row(r)[cl:ch]
		rrow := res.Row(r)[cl:ch]
		for j, v := range b {
			// Left-to-right (row + bias) + residual: the exact accumulation
			// order of the pre-generic session loop, preserving bit-identical
			// float64 results.
			row[j] = row[j] + v + rrow[j]
		}
	}
}

func matMulATAddChunk(dst, a, b *Mat, lo, hi int) {
	k := 0
	// 4-batch-row blocking: four outer products accumulate per pass over
	// the gradient, as sequential adds (ascending-k order preserved),
	// quartering gradient-matrix memory traffic.
	for ; k+4 <= a.Rows; k += 4 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		for i := lo; i < hi; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			drow := dst.Row(i)[:len(b0)]
			c1 := b1[:len(drow)]
			c2 := b2[:len(drow)]
			c3 := b3[:len(drow)]
			for j, bv := range b0 {
				drow[j] += av0 * bv
				drow[j] += av1 * c1[j]
				drow[j] += av2 * c2[j]
				drow[j] += av3 * c3[j]
			}
		}
	}
	for ; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Row(i)
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATAdd accumulates dst += aᵀ·b. dst must be a.Cols × b.Cols. Used for
// weight gradients (dW += Xᵀ·dY), which accumulate across calls. Training
// runs float64 only, so this kernel has no generic variant.
func (p *Pool) MatMulATAdd(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulATAdd dims %dx%dᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if p.inline(a.Cols) {
		matMulATAddChunk(dst, a, b, 0, a.Cols)
		return
	}
	p.parallelFor(a.Cols, func(lo, hi int) { matMulATAddChunk(dst, a, b, lo, hi) })
}

// MatMulATAdd accumulates dst += aᵀ·b on the default pool.
func MatMulATAdd(dst, a, b *Mat) { defaultPool.MatMulATAdd(dst, a, b) }

func matMulBTChunk[T Elem](dst, a, b *MatG[T], lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var sum T
			for k, av := range arow {
				sum += av * brow[k]
			}
			drow[j] = sum
		}
	}
}

// MatMulBTG sets dst = a·bᵀ. dst must be a.Rows × b.Rows. Used for input
// gradients (dX = dY·Wᵀ) and for projecting session embeddings onto output
// logits when no pre-transposed weight is available.
func MatMulBTG[T Elem](p *Pool, dst, a, b *MatG[T]) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMulBT dims %dx%d · %dx%dᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if d32, ok := any(dst).(*Mat32); ok {
		a32, b32 := any(a).(*Mat32), any(b).(*Mat32)
		if p.inline(a.Rows) {
			matMulBTChunk32(d32, a32, b32, 0, a.Rows)
			return
		}
		p.parallelFor(a.Rows, func(lo, hi int) { matMulBTChunk32(d32, a32, b32, lo, hi) })
		return
	}
	if p.inline(a.Rows) {
		matMulBTChunk(dst, a, b, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulBTChunk(dst, a, b, lo, hi) })
}

// MatMulBT sets dst = a·bᵀ (see MatMulBTG).
func (p *Pool) MatMulBT(dst, a, b *Mat) { MatMulBTG(p, dst, a, b) }

// MatMulBT sets dst = a·bᵀ on the default pool.
func MatMulBT(dst, a, b *Mat) { MatMulBTG(defaultPool, dst, a, b) }

func addBiasChunk[T Elem](x *MatG[T], bias []T, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := x.Row(i)
		for j, b := range bias {
			row[j] += b
		}
	}
}

// AddBiasG adds bias (length x.Cols) to every row of x in place.
func AddBiasG[T Elem](p *Pool, x *MatG[T], bias []T) {
	if len(bias) != x.Cols {
		panic("nn: AddBias length mismatch")
	}
	if p.inline(x.Rows) {
		addBiasChunk(x, bias, 0, x.Rows)
		return
	}
	p.parallelFor(x.Rows, func(lo, hi int) { addBiasChunk(x, bias, lo, hi) })
}

// AddBias adds bias (length x.Cols) to every row of x in place.
func (p *Pool) AddBias(x *Mat, bias []float64) { AddBiasG(p, x, bias) }

// AddBias adds bias to every row of x on the default pool.
func AddBias(x *Mat, bias []float64) { AddBiasG(defaultPool, x, bias) }

// BiasGradAdd accumulates column sums of dY into grad (the bias gradient).
func BiasGradAdd(grad []float64, dY *Mat) {
	if len(grad) != dY.Cols {
		panic("nn: BiasGradAdd length mismatch")
	}
	for i := 0; i < dY.Rows; i++ {
		row := dY.Row(i)
		for j, v := range row {
			grad[j] += v
		}
	}
}

// AddInto sets dst += src element-wise.
func AddInto(dst, src *Mat) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("nn: AddInto dimension mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// Hadamard sets dst = a∘b element-wise. dst may alias a or b.
func Hadamard(dst, a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("nn: Hadamard dimension mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}
