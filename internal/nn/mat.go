// Package nn is the from-scratch neural-network kernel library NeuroCard's
// deep autoregressive model is built on: dense matrices, (masked) linear
// layers, embeddings, ReLU, softmax/cross-entropy, and the Adam optimizer
// with gradient clipping. All operations are hand-derived forward/backward
// pairs validated against finite differences; matrix products parallelize
// across goroutines.
//
// The paper trains its ResMADE with PyTorch on a GPU; this package is the
// substitution that keeps the estimator's statistics identical (maximum
// likelihood on the same architecture) while running on CPUs with the
// standard library only.
package nn

import (
	"fmt"
	"runtime"
	"sync"
)

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64
}

// NewMat allocates a zeroed Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Row returns the r-th row as a slice aliasing the matrix storage.
func (m *Mat) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Zero clears all elements.
func (m *Mat) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// CopyFrom copies src into m (dimensions must match).
func (m *Mat) CopyFrom(src *Mat) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("nn: CopyFrom %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols))
	}
	copy(m.Data, src.Data)
}

// Clone returns a deep copy.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// parallelFor splits [0, n) into chunks across GOMAXPROCS workers. Small n
// runs inline to avoid goroutine overhead.
func parallelFor(n int, fn func(lo, hi int)) {
	workers := runtime.GOMAXPROCS(0)
	const minChunk = 16
	if n < 2*minChunk || workers == 1 {
		fn(0, n)
		return
	}
	if workers > n/minChunk {
		workers = n / minChunk
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MatMul sets dst = a·b. dst must be a.Rows × b.Cols and distinct from a, b.
func MatMul(dst, a, b *Mat) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMul dims %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := range drow {
				drow[j] = 0
			}
			for k, av := range arow {
				if av == 0 {
					continue // ReLU activations are often sparse
				}
				brow := b.Row(k)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulSub sets the leading m columns of dst to a[:, :k]·b[:k, :m],
// leaving columns ≥ m of dst untouched. All matrices keep their full
// row-major layout; only row slices are restricted, so no copies are made.
// Used by inference sessions to run MADE trunk passes over the contiguous
// "degree ≤ col" prefix — entries outside the prefix multiply masked-zero
// weights and are skipped instead of computed.
func MatMulSub(dst, a, b *Mat, k, m int) {
	if k > a.Cols || k > b.Rows || m > b.Cols || m > dst.Cols || dst.Rows != a.Rows {
		panic(fmt.Sprintf("nn: MatMulSub dims %dx%d[:%d] · %dx%d[:%d,:%d] -> %dx%d",
			a.Rows, a.Cols, k, b.Rows, b.Cols, k, m, dst.Rows, dst.Cols))
	}
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)[:k]
			drow := dst.Row(i)[:m]
			for j := range drow {
				drow[j] = 0
			}
			for j, av := range arow {
				if av == 0 {
					continue
				}
				brow := b.Row(j)[:m]
				for c, bv := range brow {
					drow[c] += av * bv
				}
			}
		}
	})
}

// AddBiasSub adds bias[:m] to the leading m columns of every row of x.
func AddBiasSub(x *Mat, bias []float64, m int) {
	if m > x.Cols || m > len(bias) {
		panic("nn: AddBiasSub length mismatch")
	}
	b := bias[:m]
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)[:m]
		for j, v := range b {
			row[j] += v
		}
	}
}

// MatMulATAdd accumulates dst += aᵀ·b. dst must be a.Cols × b.Cols. Used for
// weight gradients (dW += Xᵀ·dY), which accumulate across calls.
func MatMulATAdd(dst, a, b *Mat) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulATAdd dims %dx%dᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelFor(a.Cols, func(lo, hi int) {
		for k := 0; k < a.Rows; k++ {
			arow := a.Row(k)
			brow := b.Row(k)
			for i := lo; i < hi; i++ {
				av := arow[i]
				if av == 0 {
					continue
				}
				drow := dst.Row(i)
				for j, bv := range brow {
					drow[j] += av * bv
				}
			}
		}
	})
}

// MatMulBT sets dst = a·bᵀ. dst must be a.Rows × b.Rows. Used for input
// gradients (dX = dY·Wᵀ).
func MatMulBT(dst, a, b *Mat) {
	if a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != b.Rows {
		panic(fmt.Sprintf("nn: MatMulBT dims %dx%d · %dx%dᵀ -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	parallelFor(a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			drow := dst.Row(i)
			for j := 0; j < b.Rows; j++ {
				brow := b.Row(j)
				sum := 0.0
				for k, av := range arow {
					sum += av * brow[k]
				}
				drow[j] = sum
			}
		}
	})
}

// AddBias adds bias (length x.Cols) to every row of x in place.
func AddBias(x *Mat, bias []float64) {
	if len(bias) != x.Cols {
		panic("nn: AddBias length mismatch")
	}
	parallelFor(x.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Row(i)
			for j, b := range bias {
				row[j] += b
			}
		}
	})
}

// BiasGradAdd accumulates column sums of dY into grad (the bias gradient).
func BiasGradAdd(grad []float64, dY *Mat) {
	if len(grad) != dY.Cols {
		panic("nn: BiasGradAdd length mismatch")
	}
	for i := 0; i < dY.Rows; i++ {
		row := dY.Row(i)
		for j, v := range row {
			grad[j] += v
		}
	}
}

// AddInto sets dst += src element-wise.
func AddInto(dst, src *Mat) {
	if dst.Rows != src.Rows || dst.Cols != src.Cols {
		panic("nn: AddInto dimension mismatch")
	}
	for i, v := range src.Data {
		dst.Data[i] += v
	}
}

// Hadamard sets dst = a∘b element-wise. dst may alias a or b.
func Hadamard(dst, a, b *Mat) {
	if a.Rows != b.Rows || a.Cols != b.Cols || dst.Rows != a.Rows || dst.Cols != a.Cols {
		panic("nn: Hadamard dimension mismatch")
	}
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
}
