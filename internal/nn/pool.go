package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one chunk of a parallel loop handed to a pool worker.
type task struct {
	fn     func(lo, hi int)
	lo, hi int
	box    *syncBox
}

// syncBox is the per-parallel-call synchronization state: the WaitGroup the
// dispatched chunks report to, plus the first panic any chunk raised. It is
// the single heap allocation a dispatching parallel call was already paying
// for its escaping WaitGroup.
//
// Panic containment: a panic inside a worker-run chunk must not kill the
// worker goroutine (which would crash the whole process — workers have no
// caller to recover them). Instead every chunk, worker- or caller-run, stores
// its panic value in the box and the dispatching caller re-raises it after
// wg.Wait, when all sibling chunks have finished touching the output buffers.
// The panic therefore surfaces on the goroutine that asked for the work — in
// serving, that is an estimate worker with a recover() that converts it into
// a positional error — and the pool stays fully usable.
type syncBox struct {
	wg  sync.WaitGroup
	mu  sync.Mutex
	pan any
}

// setPanic records the first panic raised by any chunk of the call.
func (b *syncBox) setPanic(r any) {
	b.mu.Lock()
	if b.pan == nil {
		b.pan = r
	}
	b.mu.Unlock()
}

// run executes one dispatched chunk under panic capture and reports done.
func (t task) run() {
	defer t.box.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.box.setPanic(r)
		}
	}()
	t.fn(t.lo, t.hi)
}

// runInline executes the caller's own chunk under the same panic capture but
// without a Done (the caller chunk is never Added): the caller must still
// wg.Wait for workers before re-raising, or it would unwind while sibling
// chunks write into shared buffers.
func (t task) runInline() {
	defer func() {
		if r := recover(); r != nil {
			t.box.setPanic(r)
		}
	}()
	t.fn(t.lo, t.hi)
}

// finish waits for every dispatched chunk and re-raises the first captured
// panic on the calling goroutine.
func (b *syncBox) finish() {
	b.wg.Wait()
	if b.pan != nil {
		panic(b.pan)
	}
}

// Pool executes kernel loops across a fixed set of persistent worker
// goroutines. The calling goroutine always participates (it runs the final
// chunk and any chunk the workers cannot absorb), so a Pool with parallelism
// p uses the caller plus p-1 workers and can never deadlock: if the task
// queue is full — e.g. many concurrent sessions share one pool — excess
// chunks simply run inline on the caller.
//
// Workers are started lazily on the first parallel call and live for the
// process lifetime; submitting a chunk is a channel send, not a goroutine
// spawn, which is what makes small training-step kernels cheap to
// parallelize.
//
// Chunk boundaries depend only on n and the pool's parallelism, and every
// output element is produced entirely within one chunk, so results are
// independent of which goroutine runs which chunk.
type Pool struct {
	// par is the max parallelism including the caller; 0 means "resolve to
	// GOMAXPROCS at first use". Atomic because cold pools may be touched
	// concurrently: the first parallel call pins par inside the once while
	// kernels on other goroutines read it (parallelism/inline) without
	// having passed through that once yet.
	par   atomic.Int32
	once  sync.Once
	tasks chan task
}

// NewPool returns a pool with the given maximum parallelism (caller plus
// par-1 persistent workers). par < 1 selects GOMAXPROCS.
func NewPool(par int) *Pool {
	p := &Pool{}
	if par >= 1 {
		p.par.Store(int32(par))
	}
	return p
}

// Serial is the pool that runs every kernel inline on the calling goroutine.
// Sessions serving many concurrent queries use it to keep total goroutine
// count at one per worker instead of workers × kernel chunks.
var Serial = NewPool(1)

// defaultPool backs the package-level kernel functions.
var defaultPool = NewPool(0)

// Default returns the shared pool used by the package-level kernels, sized
// to GOMAXPROCS at first use.
func Default() *Pool { return defaultPool }

// parallelism resolves the pool's effective parallelism.
func (p *Pool) parallelism() int {
	if v := p.par.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// start launches the worker goroutines once.
func (p *Pool) start(par int) {
	p.once.Do(func() {
		// Pin the parallelism so chunking stays stable across GOMAXPROCS
		// changes.
		p.par.CompareAndSwap(0, int32(par))
		n := int(p.par.Load())
		p.tasks = make(chan task, 4*n)
		for w := 0; w < n-1; w++ {
			go func() {
				for t := range p.tasks {
					t.run()
				}
			}()
		}
	})
}

// minChunk is the smallest per-chunk row count worth parallelizing.
const minChunk = 16

// inline reports whether a loop over n rows runs directly on the caller (a
// serial pool, a single-CPU configuration, or too little work to chunk).
// Kernels check it before building their parallel closure, so the serial
// hot path allocates nothing at all.
func (p *Pool) inline(n int) bool {
	return n < 2*minChunk || p.parallelism() <= 1
}

// parallelFor splits [0, n) into chunks across the pool. Small n (or a
// serial pool) runs inline.
func (p *Pool) parallelFor(n int, fn func(lo, hi int)) {
	par := p.parallelism()
	if par <= 1 || n < 2*minChunk {
		fn(0, n)
		return
	}
	if par > n/minChunk {
		par = n / minChunk
	}
	p.start(p.parallelism())
	chunk := (n + par - 1) / par
	box := &syncBox{}
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		box.wg.Add(1)
		t := task{fn: fn, lo: lo, hi: lo + chunk, box: box}
		select {
		case p.tasks <- t:
		default: // queue full: run the chunk inline instead of blocking
			t.run()
		}
	}
	task{fn: fn, lo: lo, hi: n, box: box}.runInline() // the caller always takes the last chunk
	box.finish()
}

// parallelForSum is parallelFor for reduction loops: fn returns its chunk's
// partial sum and the partials are combined in chunk order, so the result is
// deterministic for a fixed parallelism. The serial path performs no
// allocation at all.
func (p *Pool) parallelForSum(n int, fn func(lo, hi int) float64) float64 {
	par := p.parallelism()
	if par <= 1 || n < 2*minChunk {
		return fn(0, n)
	}
	if par > n/minChunk {
		par = n / minChunk
	}
	p.start(p.parallelism())
	chunk := (n + par - 1) / par
	nchunks := (n + chunk - 1) / chunk
	sums := make([]float64, nchunks)
	box := &syncBox{}
	lo, ci := 0, 0
	for ; lo+chunk < n; lo, ci = lo+chunk, ci+1 {
		box.wg.Add(1)
		t := task{lo: lo, hi: lo + chunk, box: box}
		slot := &sums[ci]
		t.fn = func(lo, hi int) { *slot = fn(lo, hi) }
		select {
		case p.tasks <- t:
		default:
			t.run()
		}
	}
	last := &sums[ci]
	task{fn: func(lo, hi int) { *last = fn(lo, hi) }, lo: lo, hi: n, box: box}.runInline()
	box.finish()
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}
