package nn

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one chunk of a parallel loop handed to a pool worker.
type task struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// Pool executes kernel loops across a fixed set of persistent worker
// goroutines. The calling goroutine always participates (it runs the final
// chunk and any chunk the workers cannot absorb), so a Pool with parallelism
// p uses the caller plus p-1 workers and can never deadlock: if the task
// queue is full — e.g. many concurrent sessions share one pool — excess
// chunks simply run inline on the caller.
//
// Workers are started lazily on the first parallel call and live for the
// process lifetime; submitting a chunk is a channel send, not a goroutine
// spawn, which is what makes small training-step kernels cheap to
// parallelize.
//
// Chunk boundaries depend only on n and the pool's parallelism, and every
// output element is produced entirely within one chunk, so results are
// independent of which goroutine runs which chunk.
type Pool struct {
	// par is the max parallelism including the caller; 0 means "resolve to
	// GOMAXPROCS at first use". Atomic because cold pools may be touched
	// concurrently: the first parallel call pins par inside the once while
	// kernels on other goroutines read it (parallelism/inline) without
	// having passed through that once yet.
	par   atomic.Int32
	once  sync.Once
	tasks chan task
}

// NewPool returns a pool with the given maximum parallelism (caller plus
// par-1 persistent workers). par < 1 selects GOMAXPROCS.
func NewPool(par int) *Pool {
	p := &Pool{}
	if par >= 1 {
		p.par.Store(int32(par))
	}
	return p
}

// Serial is the pool that runs every kernel inline on the calling goroutine.
// Sessions serving many concurrent queries use it to keep total goroutine
// count at one per worker instead of workers × kernel chunks.
var Serial = NewPool(1)

// defaultPool backs the package-level kernel functions.
var defaultPool = NewPool(0)

// Default returns the shared pool used by the package-level kernels, sized
// to GOMAXPROCS at first use.
func Default() *Pool { return defaultPool }

// parallelism resolves the pool's effective parallelism.
func (p *Pool) parallelism() int {
	if v := p.par.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// start launches the worker goroutines once.
func (p *Pool) start(par int) {
	p.once.Do(func() {
		// Pin the parallelism so chunking stays stable across GOMAXPROCS
		// changes.
		p.par.CompareAndSwap(0, int32(par))
		n := int(p.par.Load())
		p.tasks = make(chan task, 4*n)
		for w := 0; w < n-1; w++ {
			go func() {
				for t := range p.tasks {
					t.fn(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// minChunk is the smallest per-chunk row count worth parallelizing.
const minChunk = 16

// inline reports whether a loop over n rows runs directly on the caller (a
// serial pool, a single-CPU configuration, or too little work to chunk).
// Kernels check it before building their parallel closure, so the serial
// hot path allocates nothing at all.
func (p *Pool) inline(n int) bool {
	return n < 2*minChunk || p.parallelism() <= 1
}

// parallelFor splits [0, n) into chunks across the pool. Small n (or a
// serial pool) runs inline.
func (p *Pool) parallelFor(n int, fn func(lo, hi int)) {
	par := p.parallelism()
	if par <= 1 || n < 2*minChunk {
		fn(0, n)
		return
	}
	if par > n/minChunk {
		par = n / minChunk
	}
	p.start(p.parallelism())
	chunk := (n + par - 1) / par
	var wg sync.WaitGroup
	lo := 0
	for ; lo+chunk < n; lo += chunk {
		wg.Add(1)
		t := task{fn: fn, lo: lo, hi: lo + chunk, wg: &wg}
		select {
		case p.tasks <- t:
		default: // queue full: run the chunk inline instead of blocking
			fn(t.lo, t.hi)
			wg.Done()
		}
	}
	fn(lo, n) // the caller always takes the last chunk
	wg.Wait()
}

// parallelForSum is parallelFor for reduction loops: fn returns its chunk's
// partial sum and the partials are combined in chunk order, so the result is
// deterministic for a fixed parallelism. The serial path performs no
// allocation at all.
func (p *Pool) parallelForSum(n int, fn func(lo, hi int) float64) float64 {
	par := p.parallelism()
	if par <= 1 || n < 2*minChunk {
		return fn(0, n)
	}
	if par > n/minChunk {
		par = n / minChunk
	}
	p.start(p.parallelism())
	chunk := (n + par - 1) / par
	nchunks := (n + chunk - 1) / chunk
	sums := make([]float64, nchunks)
	var wg sync.WaitGroup
	lo, ci := 0, 0
	for ; lo+chunk < n; lo, ci = lo+chunk, ci+1 {
		wg.Add(1)
		t := task{lo: lo, hi: lo + chunk, wg: &wg}
		slot := &sums[ci]
		t.fn = func(lo, hi int) { *slot = fn(lo, hi) }
		select {
		case p.tasks <- t:
		default:
			t.fn(t.lo, t.hi)
			wg.Done()
		}
	}
	sums[ci] = fn(lo, n)
	wg.Wait()
	total := 0.0
	for _, s := range sums {
		total += s
	}
	return total
}
