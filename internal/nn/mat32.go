package nn

import "math"

// Float32 serving kernels. The generic kernels in mat.go stencil to scalar
// code for every width; Go's compiler does not auto-vectorize, so scalar
// float32 runs no faster than float64. The float32 path is gated on measured
// q-error rather than bit equivalence (DESIGN.md §1.4), which frees it to use
// the SSE axpy/dot primitives in simd_amd64.s and a polynomial exp. The
// MatMul* specializations compose axpy32 per ascending k, so each output
// element still accumulates in exactly the scalar order — bit-identical to
// the generic float32 chunks; only dot products and exp32 reassociate.

// Axpy32 computes y[i] += alpha·x[i] over len(x) elements (SSE on amd64).
// Per-element results are bit-identical to the scalar loop.
func Axpy32(alpha float32, x, y []float32) {
	if len(y) < len(x) {
		panic("nn: Axpy32 y shorter than x")
	}
	axpy32(alpha, x, y)
}

// Dot32 returns Σ x[i]·y[i] over len(x) elements (SSE on amd64). The
// accumulation order differs from a scalar loop — float32 serving path only.
func Dot32(x, y []float32) float32 {
	if len(y) < len(x) {
		panic("nn: Dot32 y shorter than x")
	}
	return dot32(x, y)
}

// ConvertT32 returns a freshly allocated float32 copy of src transposed —
// the layout the float32 serving path stores trunk and head weights in. A
// matrix column becomes a contiguous row, so prefix-restricted products turn
// into long unit-stride dot products (MatMulColsBT32) instead of the short
// strided axpy spans the row-major layout yields when the extended column
// range is narrow. Same bytes as Convert32: transposition replaces the
// row-major copy, it does not duplicate it.
func ConvertT32(src *Mat) *Mat32 {
	out := NewMat32(src.Cols, src.Rows)
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		for j, v := range row {
			out.Data[j*src.Rows+i] = float32(v)
		}
	}
	return out
}

func matMulColsBTChunk32(dst, a, bT *Mat32, k, cl, ch, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)
		for c := cl; c < ch; c++ {
			drow[c] = dot32(arow, bT.Row(c)[:k])
		}
	}
}

// MatMulColsBT32 sets dst[:, cl:ch) = a[:, :k] · bT[cl:ch, :k)ᵀ — the
// transposed-weight counterpart of MatMulColsG. bT holds the weight matrix
// transposed, so each output element is one contiguous length-k dot product;
// with the trunk extension's narrow [cl, ch) ranges and long k prefixes this
// keeps the SSE lanes full where the axpy formulation degenerates to scalar
// tails. Accumulation order is dot32's (lane groups), so this kernel belongs
// to the q-error-gated float32 path only.
func MatMulColsBT32(p *Pool, dst, a, bT *Mat32, k, cl, ch int) {
	if k > a.Cols || k > bT.Cols || cl < 0 || cl > ch || ch > bT.Rows || ch > dst.Cols || dst.Rows != a.Rows {
		panic("nn: MatMulColsBT32 dimension mismatch")
	}
	if cl == ch {
		return
	}
	if p.inline(a.Rows) {
		matMulColsBTChunk32(dst, a, bT, k, cl, ch, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulColsBTChunk32(dst, a, bT, k, cl, ch, lo, hi) })
}

func matMulChunk32(dst, a, b *Mat32, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue // ReLU activations are often sparse
			}
			axpy32(av, b.Row(k), drow[:len(b.Row(k))])
		}
	}
}

func matMulSubChunk32(dst, a, b *Mat32, k, m, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)[:m]
		for j := range drow {
			drow[j] = 0
		}
		for j, av := range arow {
			if av == 0 {
				continue
			}
			axpy32(av, b.Row(j)[:m], drow)
		}
	}
}

func matMulColsChunk32(dst, a, b *Mat32, k, cl, ch, lo, hi int) {
	w := ch - cl
	for i := lo; i < hi; i++ {
		arow := a.Row(i)[:k]
		drow := dst.Row(i)[cl:][:w]
		for j := range drow {
			drow[j] = 0
		}
		for j, av := range arow {
			if av == 0 {
				continue
			}
			axpy32(av, b.Row(j)[cl:][:w], drow)
		}
	}
}

func matMulBTChunk32(dst, a, b *Mat32, lo, hi int) {
	for i := lo; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			drow[j] = dot32(arow, b.Row(j))
		}
	}
}

// exp32 is a single-precision exp: exp(x) = 2^n · exp(f) with f reduced to
// [-ln2/2, ln2/2] and exp(f) a degree-6 minimax polynomial (Cephes expf
// coefficients), assembled through the float32 exponent field. Relative
// error ≲ 2·10⁻⁷ — below float32 rounding noise for the softmax that calls
// it, and orders of magnitude inside the serving q-error tolerance.
func exp32(x float32) float32 {
	const (
		log2e = 1.44269504088896341
		ln2hi = 6.93359375e-1
		ln2lo = -2.12194440e-4
	)
	if x > 88.37626 {
		return float32(math.Inf(1))
	}
	if x < -87.33654 {
		return 0
	}
	z := x*log2e + 0.5
	n := int32(z)
	if z < float32(n) { // truncation rounded toward zero; we need floor
		n--
	}
	fn := float32(n)
	f := x - fn*ln2hi - fn*ln2lo
	p := float32(1.9875691500e-4)
	p = p*f + 1.3981999507e-3
	p = p*f + 8.3334519073e-3
	p = p*f + 4.1665795894e-2
	p = p*f + 1.6666665459e-1
	p = p*f + 5.0000001201e-1
	r := p*f*f + f + 1
	return r * math.Float32frombits(uint32(n+127)<<23)
}

func softmaxRowsChunk32(dst, logits *Mat32, lo, hi int) {
	for i := lo; i < hi; i++ {
		src := logits.Row(i)
		out := dst.Row(i)
		maxv := float32(math.Inf(-1))
		for _, v := range src {
			if v > maxv {
				maxv = v
			}
		}
		var sum float32
		for j, v := range src {
			e := exp32(v - maxv)
			out[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range out {
			out[j] *= inv
		}
	}
}
