//go:build amd64

package nn

// axpy32 computes y[i] += alpha * x[i] over len(x) elements with SSE lanes.
// Per-element semantics match the scalar loop exactly (one IEEE multiply,
// one IEEE add, ascending index), so composed kernels stay bit-identical to
// their pure-Go counterparts. len(y) >= len(x) is the caller's contract.
//
//go:noescape
func axpy32(alpha float32, x, y []float32)

// dot32 returns Σ x[i]·y[i] over len(x) elements. Accumulation runs in four
// independent SSE lane groups reduced at the end — a different association
// than the scalar loop, acceptable on the q-error-gated float32 path only.
// len(y) >= len(x) is the caller's contract.
//
//go:noescape
func dot32(x, y []float32) float32
