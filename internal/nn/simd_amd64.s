// SSE2 float32 kernels for the reduced-precision serving path. amd64
// guarantees SSE2, so no CPU feature detection is needed. Both functions are
// leaf NOSPLIT routines with stack (ABI0) arguments.
//
// axpy32 keeps scalar IEEE semantics per element (one multiply, one add, in
// index order), so callers composing it per ascending k produce results
// bit-identical to the pure-Go loops. dot32 accumulates in four independent
// lane groups and reduces at the end — a different association than the
// scalar loop, which the float32 serving path's q-error gate (not bit
// equivalence) permits.

#include "textflag.h"

// func axpy32(alpha float32, x, y []float32)
// y[i] += alpha * x[i] for i < len(x). Caller guarantees len(y) >= len(x).
TEXT ·axpy32(SB), NOSPLIT, $0-56
	MOVSS  alpha+0(FP), X0
	MOVQ   x_base+8(FP), SI
	MOVQ   x_len+16(FP), CX
	MOVQ   y_base+32(FP), DI
	SHUFPS $0x00, X0, X0 // broadcast alpha into all four lanes
	XORQ   AX, AX
	MOVQ   CX, BX
	ANDQ   $-16, BX

axpy_loop16:
	CMPQ   AX, BX
	JGE    axpy_setup4
	MOVUPS (SI)(AX*4), X1
	MOVUPS 16(SI)(AX*4), X2
	MOVUPS 32(SI)(AX*4), X3
	MOVUPS 48(SI)(AX*4), X4
	MULPS  X0, X1
	MULPS  X0, X2
	MULPS  X0, X3
	MULPS  X0, X4
	MOVUPS (DI)(AX*4), X5
	MOVUPS 16(DI)(AX*4), X6
	MOVUPS 32(DI)(AX*4), X7
	MOVUPS 48(DI)(AX*4), X8
	ADDPS  X1, X5
	ADDPS  X2, X6
	ADDPS  X3, X7
	ADDPS  X4, X8
	MOVUPS X5, (DI)(AX*4)
	MOVUPS X6, 16(DI)(AX*4)
	MOVUPS X7, 32(DI)(AX*4)
	MOVUPS X8, 48(DI)(AX*4)
	ADDQ   $16, AX
	JMP    axpy_loop16

axpy_setup4:
	MOVQ CX, BX
	ANDQ $-4, BX

axpy_loop4:
	CMPQ   AX, BX
	JGE    axpy_scalar
	MOVUPS (SI)(AX*4), X1
	MULPS  X0, X1
	MOVUPS (DI)(AX*4), X5
	ADDPS  X1, X5
	MOVUPS X5, (DI)(AX*4)
	ADDQ   $4, AX
	JMP    axpy_loop4

axpy_scalar:
	CMPQ  AX, CX
	JGE   axpy_done
	MOVSS (SI)(AX*4), X1
	MULSS X0, X1
	MOVSS (DI)(AX*4), X5
	ADDSS X1, X5
	MOVSS X5, (DI)(AX*4)
	INCQ  AX
	JMP   axpy_scalar

axpy_done:
	RET

// func dot32(x, y []float32) float32
// Returns Σ x[i]*y[i] for i < len(x). Caller guarantees len(y) >= len(x).
TEXT ·dot32(SB), NOSPLIT, $0-52
	MOVQ  x_base+0(FP), SI
	MOVQ  x_len+8(FP), CX
	MOVQ  y_base+24(FP), DI
	XORPS X0, X0
	XORPS X1, X1
	XORPS X2, X2
	XORPS X3, X3
	XORQ  AX, AX
	MOVQ  CX, BX
	ANDQ  $-16, BX

dot_loop16:
	CMPQ   AX, BX
	JGE    dot_setup4
	MOVUPS (SI)(AX*4), X4
	MOVUPS 16(SI)(AX*4), X5
	MOVUPS 32(SI)(AX*4), X6
	MOVUPS 48(SI)(AX*4), X7
	MOVUPS (DI)(AX*4), X8
	MOVUPS 16(DI)(AX*4), X9
	MOVUPS 32(DI)(AX*4), X10
	MOVUPS 48(DI)(AX*4), X11
	MULPS  X8, X4
	MULPS  X9, X5
	MULPS  X10, X6
	MULPS  X11, X7
	ADDPS  X4, X0
	ADDPS  X5, X1
	ADDPS  X6, X2
	ADDPS  X7, X3
	ADDQ   $16, AX
	JMP    dot_loop16

dot_setup4:
	MOVQ CX, BX
	ANDQ $-4, BX

dot_loop4:
	CMPQ   AX, BX
	JGE    dot_reduce
	MOVUPS (SI)(AX*4), X4
	MOVUPS (DI)(AX*4), X8
	MULPS  X8, X4
	ADDPS  X4, X0
	ADDQ   $4, AX
	JMP    dot_loop4

dot_reduce:
	ADDPS  X1, X0
	ADDPS  X3, X2
	ADDPS  X2, X0
	MOVAPS X0, X1
	SHUFPS $0xEE, X1, X1 // lanes [2,3,2,3]
	ADDPS  X1, X0
	MOVAPS X0, X1
	SHUFPS $0x55, X1, X1 // lane 1 everywhere
	ADDSS  X1, X0

dot_scalar:
	CMPQ  AX, CX
	JGE   dot_done
	MOVSS (SI)(AX*4), X4
	MULSS (DI)(AX*4), X4
	ADDSS X4, X0
	INCQ  AX
	JMP   dot_scalar

dot_done:
	MOVSS X0, ret+48(FP)
	RET
