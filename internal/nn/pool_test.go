package nn

import (
	"sync"
	"testing"
)

// TestPoolChunkPanicSurfacesOnCaller proves the blast-radius property the
// serving stack relies on: a panic inside one chunk of a parallel kernel
// loop is re-raised on the goroutine that requested the loop — never left to
// kill a worker goroutine (which would crash the process) — and the pool
// remains fully usable afterwards.
func TestPoolChunkPanicSurfacesOnCaller(t *testing.T) {
	p := NewPool(4)
	n := 8 * minChunk

	caught := func() (r any) {
		defer func() { r = recover() }()
		p.parallelFor(n, func(lo, hi int) {
			if lo == 0 {
				panic("kernel chunk boom")
			}
		})
		return nil
	}()
	if caught != "kernel chunk boom" {
		t.Fatalf("recovered %v, want the chunk's panic value", caught)
	}

	// Panic in a non-caller chunk (dispatched to a worker) must also surface
	// on the caller and must not wedge the WaitGroup.
	caught = func() (r any) {
		defer func() { r = recover() }()
		p.parallelFor(n, func(lo, hi int) {
			if lo != 0 {
				panic("worker chunk boom")
			}
		})
		return nil
	}()
	if caught != "worker chunk boom" {
		t.Fatalf("recovered %v, want the worker chunk's panic value", caught)
	}

	// The pool still works: workers survived the panics above.
	var mu sync.Mutex
	covered := make([]bool, n)
	p.parallelFor(n, func(lo, hi int) {
		mu.Lock()
		for i := lo; i < hi; i++ {
			covered[i] = true
		}
		mu.Unlock()
	})
	for i, ok := range covered {
		if !ok {
			t.Fatalf("index %d not covered after panic recovery", i)
		}
	}

	// parallelForSum: same containment, and a clean run still sums correctly.
	caught = func() (r any) {
		defer func() { r = recover() }()
		p.parallelForSum(n, func(lo, hi int) float64 {
			panic("sum chunk boom")
		})
		return nil
	}()
	if caught != "sum chunk boom" {
		t.Fatalf("recovered %v from parallelForSum, want the chunk's panic value", caught)
	}
	got := p.parallelForSum(n, func(lo, hi int) float64 { return float64(hi - lo) })
	if got != float64(n) {
		t.Fatalf("parallelForSum after panic = %g, want %d", got, n)
	}
}
