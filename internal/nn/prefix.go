package nn

import "fmt"

// Prefix-structured masked kernels.
//
// MADE with sorted degree assignment gives every masked weight matrix W a
// banded structure: row j of W is nonzero exactly on the contiguous column
// suffix [start[j], W.Cols) — equivalently, output column k reads only a
// contiguous input prefix. The kernels below take that per-row start table
// (or its transposed dual, a per-row extent table) and skip the
// structurally-zero region instead of multiplying through it, cutting
// roughly half the FLOPs of every trunk matmul in both the forward and
// backward pass. Because every skipped entry is an exact zero, the results
// are bit-identical to the dense kernels (up to the sign of zero).

func checkSuffix(start []int, rows, cols int, name string) {
	if len(start) != rows {
		panic(fmt.Sprintf("nn: %s start table has %d entries for %d rows", name, len(start), rows))
	}
	for _, s := range start {
		if s < 0 || s > cols {
			panic(fmt.Sprintf("nn: %s start %d out of [0,%d]", name, s, cols))
		}
	}
}

func checkPrefix(ext []int, rows, cols int, name string) {
	if len(ext) != rows {
		panic(fmt.Sprintf("nn: %s extent table has %d entries for %d rows", name, len(ext), rows))
	}
	for _, e := range ext {
		if e < 0 || e > cols {
			panic(fmt.Sprintf("nn: %s extent %d out of [0,%d]", name, e, cols))
		}
	}
}

func matMulRowSuffixChunk(dst, a, b *Mat, start []int, lo, hi int) {
	i := lo
	// 4-row register blocking (see matMulChunk): per-element accumulation
	// order is unchanged, b-row traffic is quartered.
	for ; i+4 <= hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		for j := range d0 {
			d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
		}
		for k, av0 := range a0 {
			av1, av2, av3 := a1[k], a2[k], a3[k]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			s := start[k]
			brow := b.Row(k)[s:]
			e0 := d0[s:][:len(brow)]
			e1 := d1[s:][:len(brow)]
			e2 := d2[s:][:len(brow)]
			e3 := d3[s:][:len(brow)]
			for j, bv := range brow {
				e0[j] += av0 * bv
				e1[j] += av1 * bv
				e2[j] += av2 * bv
				e3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := range drow {
			drow[j] = 0
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			s := start[k]
			brow := b.Row(k)[s:]
			dsub := drow[s:][:len(brow)]
			for j, bv := range brow {
				dsub[j] += av * bv
			}
		}
	}
}

// MatMulRowSuffix sets dst = a·b where row k of b is nonzero only on columns
// [start[k], b.Cols). Forward pass of a suffix-masked linear layer.
func (p *Pool) MatMulRowSuffix(dst, a, b *Mat, start []int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulRowSuffix dims %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	checkSuffix(start, b.Rows, b.Cols, "MatMulRowSuffix")
	if p.inline(a.Rows) {
		matMulRowSuffixChunk(dst, a, b, start, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulRowSuffixChunk(dst, a, b, start, lo, hi) })
}

// MatMulRowSuffix runs on the default pool.
func MatMulRowSuffix(dst, a, b *Mat, start []int) { defaultPool.MatMulRowSuffix(dst, a, b, start) }

func matMulATAddRowSuffixChunk(dst, a, b *Mat, start []int, lo, hi int) {
	k := 0
	// 4-batch-row blocking: each pass over dst accumulates four batch rows'
	// outer products as four sequential adds per element — ascending-k
	// order exactly as the scalar loop, a quarter of the gradient traffic.
	for ; k+4 <= a.Rows; k += 4 {
		a0, a1, a2, a3 := a.Row(k), a.Row(k+1), a.Row(k+2), a.Row(k+3)
		b0, b1, b2, b3 := b.Row(k), b.Row(k+1), b.Row(k+2), b.Row(k+3)
		for i := lo; i < hi; i++ {
			av0, av1, av2, av3 := a0[i], a1[i], a2[i], a3[i]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			s := start[i]
			drow := dst.Row(i)[s:]
			c0 := b0[s:][:len(drow)]
			c1 := b1[s:][:len(drow)]
			c2 := b2[s:][:len(drow)]
			c3 := b3[s:][:len(drow)]
			for j := range drow {
				drow[j] += av0 * c0[j]
				drow[j] += av1 * c1[j]
				drow[j] += av2 * c2[j]
				drow[j] += av3 * c3[j]
			}
		}
	}
	for ; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := lo; i < hi; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			s := start[i]
			drow := dst.Row(i)[s:]
			for j, bv := range brow[s:][:len(drow)] {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATAddRowSuffix accumulates dst += aᵀ·b restricted to the suffix
// structure: dst[j][k] is touched only for k ≥ start[j]. The weight-gradient
// kernel for a suffix-masked layer — masked entries are never written, so no
// separate gradient re-masking pass is needed.
func (p *Pool) MatMulATAddRowSuffix(dst, a, b *Mat, start []int) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulATAddRowSuffix dims %dx%dᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	checkSuffix(start, dst.Rows, dst.Cols, "MatMulATAddRowSuffix")
	if p.inline(a.Cols) {
		matMulATAddRowSuffixChunk(dst, a, b, start, 0, a.Cols)
		return
	}
	p.parallelFor(a.Cols, func(lo, hi int) { matMulATAddRowSuffixChunk(dst, a, b, start, lo, hi) })
}

// MatMulATAddRowSuffix runs on the default pool.
func MatMulATAddRowSuffix(dst, a, b *Mat, start []int) {
	defaultPool.MatMulATAddRowSuffix(dst, a, b, start)
}

// MatMulATAddSub accumulates dst[:k] += a[:, :k]ᵀ·b: only the first k rows
// of dst are touched. Head weight gradients use it with k = the head's
// hidden-prefix width — rows beyond the prefix read zeroed hidden units and
// must keep zero gradient. The loop body is MatMulATAdd's chunk restricted
// to the leading k columns of a.
func (p *Pool) MatMulATAddSub(dst, a, b *Mat, k int) {
	if a.Rows != b.Rows || dst.Rows != a.Cols || dst.Cols != b.Cols || k > a.Cols {
		panic(fmt.Sprintf("nn: MatMulATAddSub dims %dx%d[:%d]ᵀ · %dx%d -> %dx%d",
			a.Rows, a.Cols, k, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	if p.inline(k) {
		matMulATAddChunk(dst, a, b, 0, k)
		return
	}
	p.parallelFor(k, func(lo, hi int) { matMulATAddChunk(dst, a, b, lo, hi) })
}

// MatMulATAddSub runs on the default pool.
func MatMulATAddSub(dst, a, b *Mat, k int) { defaultPool.MatMulATAddSub(dst, a, b, k) }

// TransposeInto sets dst = srcᵀ (dst must be src.Cols × src.Rows).
// Training sessions transpose the small weight matrices once per step so
// every backward ·Wᵀ product can run in cache-friendly row-streaming (axpy)
// form instead of a latency-bound dot product per output element.
func TransposeInto(dst, src *Mat) {
	if dst.Rows != src.Cols || dst.Cols != src.Rows {
		panic(fmt.Sprintf("nn: TransposeInto %dx%d into %dx%d", src.Rows, src.Cols, dst.Rows, dst.Cols))
	}
	for i := 0; i < src.Rows; i++ {
		row := src.Row(i)
		for j, v := range row {
			dst.Data[j*dst.Cols+i] = v
		}
	}
}

func matMulPrefixChunk(dst, a, b *Mat, ext []int, add bool, lo, hi int) {
	i := lo
	// 4-row register blocking (see matMulChunk).
	for ; i+4 <= hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0, d1, d2, d3 := dst.Row(i), dst.Row(i+1), dst.Row(i+2), dst.Row(i+3)
		if !add {
			for j := range d0 {
				d0[j], d1[j], d2[j], d3[j] = 0, 0, 0, 0
			}
		}
		for k, av0 := range a0 {
			av1, av2, av3 := a1[k], a2[k], a3[k]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			e := ext[k]
			if e == 0 {
				continue
			}
			brow := b.Row(k)[:e]
			e0 := d0[:e]
			e1 := d1[:e]
			e2 := d2[:e]
			e3 := d3[:e]
			for j, bv := range brow {
				e0[j] += av0 * bv
				e1[j] += av1 * bv
				e2[j] += av2 * bv
				e3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		if !add {
			for j := range drow {
				drow[j] = 0
			}
		}
		for k, av := range arow {
			if av == 0 {
				continue
			}
			e := ext[k]
			if e == 0 {
				continue
			}
			brow := b.Row(k)[:e]
			dsub := drow[:e]
			for j, bv := range brow {
				dsub[j] += av * bv
			}
		}
	}
}

// MatMulPrefix sets dst = a·b where row k of b is nonzero only on columns
// [0, ext[k]). This is the transposed dual of MatMulRowSuffix: a
// suffix-masked weight W becomes prefix-masked as Wᵀ, so backward products
// dY·Wᵀ run through this kernel over a pre-transposed weight. Per output
// element the accumulation order over k is ascending, exactly as the dot
// form, so the two are bit-identical; the axpy form additionally skips
// entire k rows where a's entry is zero (ReLU-sparse gradients).
func (p *Pool) MatMulPrefix(dst, a, b *Mat, ext []int) {
	p.matMulPrefix(dst, a, b, ext, false)
}

// MatMulPrefix runs on the default pool.
func MatMulPrefix(dst, a, b *Mat, ext []int) { defaultPool.MatMulPrefix(dst, a, b, ext) }

// MatMulPrefixAdd accumulates dst += a·b under the same prefix structure,
// fusing the residual-path addition of trunk backprop.
func (p *Pool) MatMulPrefixAdd(dst, a, b *Mat, ext []int) {
	p.matMulPrefix(dst, a, b, ext, true)
}

// MatMulPrefixAdd runs on the default pool.
func MatMulPrefixAdd(dst, a, b *Mat, ext []int) { defaultPool.MatMulPrefixAdd(dst, a, b, ext) }

func (p *Pool) matMulPrefix(dst, a, b *Mat, ext []int, add bool) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || dst.Cols != b.Cols {
		panic(fmt.Sprintf("nn: MatMulPrefix dims %dx%d · %dx%d -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, dst.Rows, dst.Cols))
	}
	checkPrefix(ext, b.Rows, b.Cols, "MatMulPrefix")
	if p.inline(a.Rows) {
		matMulPrefixChunk(dst, a, b, ext, add, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulPrefixChunk(dst, a, b, ext, add, lo, hi) })
}

func matMulAddColsChunk(dst, a, b *Mat, m, lo, hi int) {
	i := lo
	// 4-row register blocking (see matMulChunk).
	for ; i+4 <= hi; i += 4 {
		a0, a1, a2, a3 := a.Row(i), a.Row(i+1), a.Row(i+2), a.Row(i+3)
		d0 := dst.Row(i)[:m]
		d1 := dst.Row(i + 1)[:m]
		d2 := dst.Row(i + 2)[:m]
		d3 := dst.Row(i + 3)[:m]
		for k, av0 := range a0 {
			av1, av2, av3 := a1[k], a2[k], a3[k]
			if av0 == 0 && av1 == 0 && av2 == 0 && av3 == 0 {
				continue
			}
			brow := b.Row(k)[:m]
			for j, bv := range brow {
				d0[j] += av0 * bv
				d1[j] += av1 * bv
				d2[j] += av2 * bv
				d3[j] += av3 * bv
			}
		}
	}
	for ; i < hi; i++ {
		arow := a.Row(i)
		dsub := dst.Row(i)[:m]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)[:m]
			for j, bv := range brow {
				dsub[j] += av * bv
			}
		}
	}
}

// MatMulAddCols accumulates dst[:, :m] += a·b[:, :m], leaving columns ≥ m
// untouched. Head backprop uses it (with b = headWᵀ and m = the head's
// hidden-prefix width) to scatter dProj·headWᵀ into the prefix of dh.
func (p *Pool) MatMulAddCols(dst, a, b *Mat, m int) {
	if a.Cols != b.Rows || dst.Rows != a.Rows || m > dst.Cols || m > b.Cols {
		panic(fmt.Sprintf("nn: MatMulAddCols dims %dx%d · %dx%d[:%d] -> %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, m, dst.Rows, dst.Cols))
	}
	if p.inline(a.Rows) {
		matMulAddColsChunk(dst, a, b, m, 0, a.Rows)
		return
	}
	p.parallelFor(a.Rows, func(lo, hi int) { matMulAddColsChunk(dst, a, b, m, lo, hi) })
}

// MatMulAddCols runs on the default pool.
func MatMulAddCols(dst, a, b *Mat, m int) { defaultPool.MatMulAddCols(dst, a, b, m) }

func addBiasReluChunk(x *Mat, bias []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		row := x.Row(i)
		for j, b := range bias {
			v := row[j] + b
			if v < 0 {
				v = 0
			}
			row[j] = v
		}
	}
}

// AddBiasRelu fuses x = relu(x + bias) into one pass over x. Element order
// matches AddBias followed by ReluInPlace exactly.
func (p *Pool) AddBiasRelu(x *Mat, bias []float64) {
	if len(bias) != x.Cols {
		panic("nn: AddBiasRelu length mismatch")
	}
	if p.inline(x.Rows) {
		addBiasReluChunk(x, bias, 0, x.Rows)
		return
	}
	p.parallelFor(x.Rows, func(lo, hi int) { addBiasReluChunk(x, bias, lo, hi) })
}

// AddBiasRelu runs on the default pool.
func AddBiasRelu(x *Mat, bias []float64) { defaultPool.AddBiasRelu(x, bias) }

func addBiasResidualChunk(f *Mat, bias []float64, h *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		frow := f.Row(i)
		hrow := h.Row(i)
		for j, b := range bias {
			frow[j] = (frow[j] + b) + hrow[j]
		}
	}
}

// AddBiasResidual fuses f = (f + bias) + h into one pass, the epilogue of a
// residual block. Per-element operation order matches AddBias followed by
// AddInto, so results are bit-identical to the unfused pair.
func (p *Pool) AddBiasResidual(f *Mat, bias []float64, h *Mat) {
	if len(bias) != f.Cols || h.Rows != f.Rows || h.Cols != f.Cols {
		panic("nn: AddBiasResidual dimension mismatch")
	}
	if p.inline(f.Rows) {
		addBiasResidualChunk(f, bias, h, 0, f.Rows)
		return
	}
	p.parallelFor(f.Rows, func(lo, hi int) { addBiasResidualChunk(f, bias, h, lo, hi) })
}

// AddBiasResidual runs on the default pool.
func AddBiasResidual(f *Mat, bias []float64, h *Mat) { defaultPool.AddBiasResidual(f, bias, h) }
