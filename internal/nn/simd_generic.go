//go:build !amd64

package nn

// Portable fallbacks for the SSE float32 kernels in simd_amd64.s. Same
// contracts: len(y) >= len(x), scalar per-element semantics for axpy32.

func axpy32(alpha float32, x, y []float32) {
	_ = y[:len(x)]
	for i, v := range x {
		y[i] += alpha * v
	}
}

func dot32(x, y []float32) float32 {
	_ = y[:len(x)]
	var sum float32
	for i, v := range x {
		sum += v * y[i]
	}
	return sum
}
