package nn

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// randStarts builds a non-decreasing per-row suffix start table (the shape
// sorted MADE degrees produce) and zeroes the masked region of b to match.
func randStarts(rng *rand.Rand, b *Mat) []int {
	start := make([]int, b.Rows)
	s := 0
	for j := range start {
		s += rng.Intn(3)
		if s > b.Cols {
			s = b.Cols
		}
		start[j] = s
	}
	for j := range start {
		row := b.Row(j)
		for c := 0; c < start[j]; c++ {
			row[c] = 0
		}
	}
	return start
}

// randExts builds an arbitrary per-row prefix extent table and zeroes b
// outside each prefix.
func randExts(rng *rand.Rand, b *Mat) []int {
	ext := make([]int, b.Rows)
	for j := range ext {
		ext[j] = rng.Intn(b.Cols + 1)
		row := b.Row(j)
		for c := ext[j]; c < b.Cols; c++ {
			row[c] = 0
		}
	}
	return ext
}

// sparsify zeroes a fraction of entries, mimicking ReLU activations so the
// kernels' zero-skip paths are exercised.
func sparsify(rng *rand.Rand, m *Mat) {
	for i := range m.Data {
		if rng.Float64() < 0.5 {
			m.Data[i] = 0
		}
	}
}

// Shapes chosen to cover the 4-row blocked path, the scalar remainder, and
// both at once (rows ≢ 0 mod 4).
var kernelShapes = [][2]int{{1, 5}, {3, 8}, {4, 16}, {7, 33}, {16, 64}, {21, 19}}

func TestMatMulRowSuffixMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, sh := range kernelShapes {
		rows, inner := sh[0], sh[1]
		cols := inner + 3
		a := randMat(rng, rows, inner)
		sparsify(rng, a)
		b := randMat(rng, inner, cols)
		start := randStarts(rng, b)
		got := NewMat(rows, cols)
		MatMulRowSuffix(got, a, b, start)
		matsClose(t, got, naiveMul(a, b), 1e-12, "MatMulRowSuffix")
	}
}

func TestMatMulPrefixMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, sh := range kernelShapes {
		rows, inner := sh[0], sh[1]
		cols := inner + 5
		a := randMat(rng, rows, inner)
		sparsify(rng, a)
		b := randMat(rng, inner, cols)
		ext := randExts(rng, b)
		got := NewMat(rows, cols)
		MatMulPrefix(got, a, b, ext)
		want := naiveMul(a, b)
		matsClose(t, got, want, 1e-12, "MatMulPrefix")
		// Add variant accumulates on top of an existing value.
		MatMulPrefixAdd(got, a, b, ext)
		for i := range want.Data {
			want.Data[i] *= 2
		}
		matsClose(t, got, want, 1e-12, "MatMulPrefixAdd")
	}
}

func TestMatMulATAddRowSuffixMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, sh := range kernelShapes {
		batch, cols := sh[0]+2, sh[1]
		outCols := cols + 2
		a := randMat(rng, batch, cols)
		sparsify(rng, a)
		b := randMat(rng, batch, outCols)
		// The start table masks dst; reference = dense aᵀ·b with the masked
		// region zeroed afterward.
		dstMask := NewMat(cols, outCols)
		for i := range dstMask.Data {
			dstMask.Data[i] = 1
		}
		start := randStarts(rng, dstMask)
		got := NewMat(cols, outCols)
		MatMulATAddRowSuffix(got, a, b, start)
		MatMulATAddRowSuffix(got, a, b, start) // accumulation: expect 2×
		at := NewMat(cols, batch)
		TransposeInto(at, a)
		want := naiveMul(at, b)
		for j := 0; j < cols; j++ {
			row := want.Row(j)
			for c := range row {
				if c < start[j] {
					row[c] = 0
				} else {
					row[c] *= 2
				}
			}
		}
		matsClose(t, got, want, 1e-12, "MatMulATAddRowSuffix")
		// Masked region must remain untouched (exact zeros).
		for j := 0; j < cols; j++ {
			for c := 0; c < start[j]; c++ {
				if got.At(j, c) != 0 {
					t.Fatalf("masked entry (%d,%d) written: %v", j, c, got.At(j, c))
				}
			}
		}
	}
}

func TestMatMulATAddSubMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, sh := range kernelShapes {
		batch, cols := sh[0]+3, sh[1]
		outCols := 7
		k := cols / 2
		a := randMat(rng, batch, cols)
		sparsify(rng, a)
		b := randMat(rng, batch, outCols)
		got := NewMat(cols, outCols)
		MatMulATAddSub(got, a, b, k)
		at := NewMat(cols, batch)
		TransposeInto(at, a)
		want := naiveMul(at, b)
		for j := k; j < cols; j++ {
			row := want.Row(j)
			for c := range row {
				row[c] = 0
			}
		}
		matsClose(t, got, want, 1e-12, "MatMulATAddSub")
	}
}

func TestMatMulAddColsMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, sh := range kernelShapes {
		rows, inner := sh[0], sh[1]
		cols := inner + 4
		m := cols / 2
		a := randMat(rng, rows, inner)
		sparsify(rng, a)
		b := randMat(rng, inner, cols)
		got := randMat(rng, rows, cols)
		orig := got.Clone()
		MatMulAddCols(got, a, b, m)
		full := naiveMul(a, b)
		for i := 0; i < rows; i++ {
			for c := 0; c < cols; c++ {
				want := orig.At(i, c)
				if c < m {
					want += full.At(i, c)
				}
				if math.Abs(got.At(i, c)-want) > 1e-12 {
					t.Fatalf("MatMulAddCols (%d,%d): got %v want %v", i, c, got.At(i, c), want)
				}
			}
		}
	}
}

func TestMatMulSubBlockedRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, rows := range []int{1, 2, 3, 4, 5, 7, 9, 12} {
		a := randMat(rng, rows, 20)
		b := randMat(rng, 20, 11)
		k, m := 13, 7
		got := NewMat(rows, 11)
		MatMulSub(got, a, b, k, m)
		for i := 0; i < rows; i++ {
			for c := 0; c < m; c++ {
				want := 0.0
				for j := 0; j < k; j++ {
					want += a.At(i, j) * b.At(j, c)
				}
				if math.Abs(got.At(i, c)-want) > 1e-12 {
					t.Fatalf("rows=%d (%d,%d): got %v want %v", rows, i, c, got.At(i, c), want)
				}
			}
		}
	}
}

func TestTransposeInto(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	src := randMat(rng, 5, 9)
	dst := NewMat(9, 5)
	TransposeInto(dst, src)
	for i := 0; i < 5; i++ {
		for j := 0; j < 9; j++ {
			if dst.At(j, i) != src.At(i, j) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestFusedBiasKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	x := randMat(rng, 6, 10)
	h := randMat(rng, 6, 10)
	bias := randMat(rng, 1, 10).Row(0)

	fused := x.Clone()
	AddBiasRelu(fused, bias)
	ref := x.Clone()
	AddBias(ref, bias)
	ReluInPlace(ref)
	matsClose(t, fused, ref, 0, "AddBiasRelu") // must be bit-identical

	fused = x.Clone()
	AddBiasResidual(fused, bias, h)
	ref = x.Clone()
	AddBias(ref, bias)
	AddInto(ref, h)
	matsClose(t, fused, ref, 0, "AddBiasResidual")
}

// TestAdamStepClippedMatchesSequential pins the fused clip+Adam update to
// the sequential ClipGradNorm + Step pair, including suffix-masked
// parameters whose masked entries must be skipped exactly.
func TestAdamStepClippedMatchesSequential(t *testing.T) {
	build := func(seed int64) []*Param {
		rng := rand.New(rand.NewSource(seed))
		dense := NewParam("dense", 3, 7)
		dense.InitNormal(rng, 1)
		masked := NewParam("masked", 6, 9)
		masked.InitNormal(rng, 1)
		masked.Suffix = []int{0, 2, 2, 5, 8, 9}
		for r, s := range masked.Suffix {
			for c := 0; c < s; c++ {
				masked.Val.Set(r, c, 0)
			}
		}
		return []*Param{dense, masked}
	}
	fillGrads := func(params []*Param, rng *rand.Rand) {
		for _, p := range params {
			for i := range p.Grad.Data {
				p.Grad.Data[i] = rng.NormFloat64() * 3
			}
			if p.Suffix != nil {
				for r, s := range p.Suffix {
					for c := 0; c < s; c++ {
						p.Grad.Set(r, c, 0)
					}
				}
			}
		}
	}

	for _, maxNorm := range []float64{0, 0.5, 1e6} {
		ref := build(1)
		fused := build(1)
		optRef := NewAdam(0.01)
		optFused := NewAdam(0.01)
		gradRng1 := rand.New(rand.NewSource(2))
		gradRng2 := rand.New(rand.NewSource(2))
		for step := 0; step < 25; step++ {
			fillGrads(ref, gradRng1)
			fillGrads(fused, gradRng2)
			var wantNorm float64
			if maxNorm > 0 {
				wantNorm = ClipGradNorm(ref, maxNorm)
			}
			optRef.Step(ref)
			gotNorm := optFused.StepClipped(fused, maxNorm)
			if maxNorm > 0 && math.Abs(gotNorm-wantNorm) > 1e-12*(1+wantNorm) {
				t.Fatalf("maxNorm=%v step %d: norm %v vs %v", maxNorm, step, gotNorm, wantNorm)
			}
			for pi := range ref {
				matsClose(t, fused[pi].Val, ref[pi].Val, 1e-12, "StepClipped weights")
				for i := range ref[pi].Grad.Data {
					if fused[pi].Grad.Data[i] != 0 {
						t.Fatalf("gradient not cleared at %d", i)
					}
				}
			}
		}
		if optFused.StepCount() != optRef.StepCount() {
			t.Fatalf("step counts diverge: %d vs %d", optFused.StepCount(), optRef.StepCount())
		}
	}
}

// TestPoolMatchesSerial runs the parallel worker pool against fully inline
// execution: chunk boundaries never change results because every output
// element is produced within one chunk.
func TestPoolMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	par := NewPool(4)
	a := randMat(rng, 200, 64)
	sparsify(rng, a)
	b := randMat(rng, 64, 48)
	start := randStarts(rng, b)

	serialOut := NewMat(200, 48)
	Serial.MatMulRowSuffix(serialOut, a, b, start)
	parOut := NewMat(200, 48)
	par.MatMulRowSuffix(parOut, a, b, start)
	matsClose(t, parOut, serialOut, 0, "pool MatMulRowSuffix")

	serialOut2 := NewMat(200, 48)
	Serial.MatMul(serialOut2, a, b)
	parOut2 := NewMat(200, 48)
	par.MatMul(parOut2, a, b)
	matsClose(t, parOut2, serialOut2, 0, "pool MatMul")

	targets := make([]int32, 200)
	for i := range targets {
		targets[i] = int32(rng.Intn(48))
	}
	logits := randMat(rng, 200, 48)
	dSerial := NewMat(200, 48)
	lossSerial := Serial.CrossEntropy(logits, targets, dSerial)
	dPar := NewMat(200, 48)
	lossPar := par.CrossEntropy(logits, targets, dPar)
	if math.Abs(lossSerial-lossPar) > 1e-9*(1+math.Abs(lossSerial)) {
		t.Fatalf("pool CrossEntropy loss %v vs %v", lossPar, lossSerial)
	}
	matsClose(t, dPar, dSerial, 0, "pool CrossEntropy gradient")
}

// TestPoolColdConcurrentFirstUse exercises a cold pool whose very first
// kernel calls arrive from several goroutines at once — the lock-free
// concurrent-Estimate pattern. Run under -race in CI: the lazily pinned
// parallelism must not race with unsynchronized readers.
func TestPoolColdConcurrentFirstUse(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	a := randMat(rng, 128, 64)
	b := randMat(rng, 64, 48)
	want := NewMat(128, 48)
	Serial.MatMul(want, a, b)

	cold := NewPool(0)
	var wg sync.WaitGroup
	outs := make([]*Mat, 4)
	for g := range outs {
		outs[g] = NewMat(128, 48)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cold.MatMul(outs[g], a, b)
		}(g)
	}
	wg.Wait()
	for g, out := range outs {
		matsClose(t, out, want, 0, "cold pool MatMul goroutine "+string(rune('0'+g)))
	}
}
