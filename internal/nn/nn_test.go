package nn

import (
	"math"
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMul is the O(n³) reference used to validate the parallel kernels.
func naiveMul(a, b *Mat) *Mat {
	out := NewMat(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			s := 0.0
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matsClose(t *testing.T, got, want *Mat, tol float64, label string) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: dims %dx%d vs %dx%d", label, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > tol {
			t.Fatalf("%s: element %d: got %v want %v", label, i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 4, 5}, {17, 33, 9}, {64, 128, 32}, {100, 7, 50}} {
		a := randMat(rng, dims[0], dims[1])
		b := randMat(rng, dims[1], dims[2])
		got := NewMat(dims[0], dims[2])
		MatMul(got, a, b)
		matsClose(t, got, naiveMul(a, b), 1e-9, "MatMul")
	}
}

func TestMatMulATAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 13, 7)
	b := randMat(rng, 13, 5)
	got := NewMat(7, 5)
	// Accumulation: run twice, expect 2× the product.
	MatMulATAdd(got, a, b)
	MatMulATAdd(got, a, b)
	at := NewMat(7, 13)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			at.Set(j, i, a.At(i, j))
		}
	}
	want := naiveMul(at, b)
	for i := range want.Data {
		want.Data[i] *= 2
	}
	matsClose(t, got, want, 1e-9, "MatMulATAdd")
}

func TestMatMulBT(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randMat(rng, 9, 6)
	b := randMat(rng, 11, 6)
	got := NewMat(9, 11)
	MatMulBT(got, a, b)
	bt := NewMat(6, 11)
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			bt.Set(j, i, b.At(i, j))
		}
	}
	matsClose(t, got, naiveMul(a, bt), 1e-9, "MatMulBT")
}

// TestMatMulCols: the column-range product must match MatMulSub on the
// computed range bit-for-bit and leave every other column untouched.
func TestMatMulCols(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range []struct{ rows, k, cols, cl, ch int }{
		{1, 3, 5, 0, 5},
		{7, 8, 8, 3, 6},
		{18, 16, 16, 0, 7},
		{33, 24, 24, 24, 24}, // empty range: no-op
		{40, 12, 20, 5, 20},
	} {
		a := randMat(rng, tc.rows, tc.k)
		b := randMat(rng, tc.k, tc.cols)
		want := NewMat(tc.rows, tc.cols)
		MatMulSub(want, a, b, tc.k, tc.ch)
		got := NewMat(tc.rows, tc.cols)
		sentinel := 42.5
		for i := range got.Data {
			got.Data[i] = sentinel
		}
		MatMulCols(got, a, b, tc.k, tc.cl, tc.ch)
		for r := 0; r < tc.rows; r++ {
			for c := 0; c < tc.cols; c++ {
				g := got.At(r, c)
				if c < tc.cl || c >= tc.ch {
					if g != sentinel {
						t.Fatalf("rows=%d [%d:%d): column %d outside range overwritten", tc.rows, tc.cl, tc.ch, c)
					}
					continue
				}
				if g != want.At(r, c) {
					t.Fatalf("rows=%d [%d:%d): element (%d,%d) %v, MatMulSub %v",
						tc.rows, tc.cl, tc.ch, r, c, g, want.At(r, c))
				}
			}
		}
	}
}

func TestMatMulColsDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range MatMulCols did not panic")
		}
	}()
	MatMulCols(NewMat(2, 3), NewMat(2, 3), NewMat(3, 3), 3, 2, 4)
}

func TestMatMulDimsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched MatMul did not panic")
		}
	}()
	MatMul(NewMat(2, 2), NewMat(2, 3), NewMat(4, 2))
}

func TestBias(t *testing.T) {
	x := NewMat(2, 3)
	AddBias(x, []float64{1, 2, 3})
	want := []float64{1, 2, 3, 1, 2, 3}
	for i, v := range want {
		if x.Data[i] != v {
			t.Fatalf("AddBias: %v", x.Data)
		}
	}
	grad := make([]float64, 3)
	BiasGradAdd(grad, x)
	for j, v := range []float64{2, 4, 6} {
		if grad[j] != v {
			t.Fatalf("BiasGradAdd: %v", grad)
		}
	}
}

func TestRelu(t *testing.T) {
	x := &Mat{Rows: 1, Cols: 4, Data: []float64{-1, 0, 2, -0.5}}
	ReluInPlace(x)
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if x.Data[i] != want[i] {
			t.Fatalf("ReluInPlace: %v", x.Data)
		}
	}
	dy := &Mat{Rows: 1, Cols: 4, Data: []float64{5, 5, 5, 5}}
	ReluBackward(dy, x)
	wantG := []float64{0, 0, 5, 0}
	for i := range wantG {
		if dy.Data[i] != wantG[i] {
			t.Fatalf("ReluBackward: %v", dy.Data)
		}
	}
}

func TestSoftmaxRows(t *testing.T) {
	logits := &Mat{Rows: 2, Cols: 3, Data: []float64{0, 0, 0, 1, 2, 3}}
	out := NewMat(2, 3)
	SoftmaxRows(out, logits)
	for i := 0; i < 2; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += out.At(i, j)
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
	if math.Abs(out.At(0, 0)-1.0/3.0) > 1e-12 {
		t.Errorf("uniform logits: %v", out.Row(0))
	}
	if out.At(1, 0) >= out.At(1, 1) || out.At(1, 1) >= out.At(1, 2) {
		t.Errorf("softmax not monotone: %v", out.Row(1))
	}
	// Large logits must not overflow.
	big := &Mat{Rows: 1, Cols: 2, Data: []float64{1000, 1001}}
	SoftmaxRows(big, big)
	if math.IsNaN(big.Data[0]) || math.IsInf(big.Data[1], 0) {
		t.Errorf("softmax overflow: %v", big.Data)
	}
}

func TestCrossEntropy(t *testing.T) {
	logits := &Mat{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 0, 0, 0}}
	dl := NewMat(2, 3)
	loss := CrossEntropy(logits, []int32{2, 0}, dl)
	// Row 0: -log softmax(3 | 1,2,3); Row 1: -log(1/3).
	sm := math.Exp(3) / (math.Exp(1) + math.Exp(2) + math.Exp(3))
	want := -math.Log(sm) - math.Log(1.0/3.0)
	if math.Abs(loss-want) > 1e-10 {
		t.Errorf("loss = %v, want %v", loss, want)
	}
	// Gradient row sums to zero (softmax - onehot).
	for i := 0; i < 2; i++ {
		sum := 0.0
		for j := 0; j < 3; j++ {
			sum += dl.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("grad row %d sums to %v", i, sum)
		}
	}
}

func TestCrossEntropyMaskedTarget(t *testing.T) {
	logits := &Mat{Rows: 2, Cols: 2, Data: []float64{5, -5, 1, 1}}
	dl := NewMat(2, 2)
	loss := CrossEntropy(logits, []int32{-1, 0}, dl)
	if math.Abs(loss-(-math.Log(0.5))) > 1e-10 {
		t.Errorf("masked loss = %v", loss)
	}
	if dl.At(0, 0) != 0 || dl.At(0, 1) != 0 {
		t.Errorf("masked row has gradient: %v", dl.Row(0))
	}
}

func TestGatherScatter(t *testing.T) {
	table := &Mat{Rows: 3, Cols: 2, Data: []float64{1, 2, 3, 4, 5, 6}}
	out := NewMat(2, 5)
	Gather(out, 1, table, []int32{2, 0})
	if out.At(0, 1) != 5 || out.At(0, 2) != 6 || out.At(1, 1) != 1 || out.At(1, 2) != 2 {
		t.Fatalf("Gather: %v", out.Data)
	}
	grad := NewMat(3, 2)
	dOut := NewMat(2, 5)
	for i := range dOut.Data {
		dOut.Data[i] = 1
	}
	ScatterAddGrad(grad, []int32{2, 2}, dOut, 1)
	if grad.At(2, 0) != 2 || grad.At(2, 1) != 2 || grad.At(0, 0) != 0 {
		t.Fatalf("ScatterAddGrad: %v", grad.Data)
	}
	// Negative ids skipped.
	Gather(out, 0, table, []int32{-1, 1})
	if out.At(0, 0) != 0 {
		t.Error("negative id overwrote output")
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = Σ (w_i - target_i)² with gradient 2(w - target).
	p := NewParam("w", 1, 4)
	target := []float64{1, -2, 3, 0.5}
	opt := NewAdam(0.05)
	for step := 0; step < 2000; step++ {
		for i := range p.Val.Data {
			p.Grad.Data[i] = 2 * (p.Val.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i, want := range target {
		if math.Abs(p.Val.Data[i]-want) > 1e-3 {
			t.Errorf("w[%d] = %v, want %v", i, p.Val.Data[i], want)
		}
	}
	if opt.StepCount() != 2000 {
		t.Errorf("StepCount = %d", opt.StepCount())
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", 1, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	if norm := ClipGradNorm([]*Param{p}, 1); math.Abs(norm-5) > 1e-12 {
		t.Errorf("pre-clip norm = %v", norm)
	}
	got := math.Hypot(p.Grad.Data[0], p.Grad.Data[1])
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("post-clip norm = %v", got)
	}
	// Under the cap: untouched.
	p.Grad.Data[0], p.Grad.Data[1] = 0.3, 0.4
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data[0] != 0.3 {
		t.Error("clip modified in-bounds gradient")
	}
}

// TestGradientCheckMLP validates the full backward pass of an
// embedding → dense → ReLU → dense → cross-entropy pipeline against central
// finite differences. This is the template composition the ResMADE model
// uses, so agreement here pins down every kernel's backward formula.
func TestGradientCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const (
		vocab   = 5
		embDim  = 3
		hidden  = 6
		classes = 4
		batch   = 7
	)
	emb := NewParam("emb", vocab, embDim)
	w1 := NewParam("w1", embDim, hidden)
	b1 := NewParam("b1", 1, hidden)
	w2 := NewParam("w2", hidden, classes)
	params := []*Param{emb, w1, b1, w2}
	for _, p := range params {
		p.InitNormal(rng, 0.5)
	}
	ids := make([]int32, batch)
	targets := make([]int32, batch)
	for i := range ids {
		ids[i] = int32(rng.Intn(vocab))
		targets[i] = int32(rng.Intn(classes))
	}

	forward := func() float64 {
		x := NewMat(batch, embDim)
		Gather(x, 0, emb.Val, ids)
		h := NewMat(batch, hidden)
		MatMul(h, x, w1.Val)
		AddBias(h, b1.Val.Row(0))
		ReluInPlace(h)
		logits := NewMat(batch, classes)
		MatMul(logits, h, w2.Val)
		dl := NewMat(batch, classes)
		return CrossEntropy(logits, targets, dl)
	}

	// Analytic gradients.
	x := NewMat(batch, embDim)
	Gather(x, 0, emb.Val, ids)
	h := NewMat(batch, hidden)
	MatMul(h, x, w1.Val)
	AddBias(h, b1.Val.Row(0))
	ReluInPlace(h)
	logits := NewMat(batch, classes)
	MatMul(logits, h, w2.Val)
	dLogits := NewMat(batch, classes)
	CrossEntropy(logits, targets, dLogits)
	MatMulATAdd(w2.Grad, h, dLogits)
	dh := NewMat(batch, hidden)
	MatMulBT(dh, dLogits, w2.Val)
	ReluBackward(dh, h)
	BiasGradAdd(b1.Grad.Row(0), dh)
	MatMulATAdd(w1.Grad, x, dh)
	dx := NewMat(batch, embDim)
	MatMulBT(dx, dh, w1.Val)
	ScatterAddGrad(emb.Grad, ids, dx, 0)

	const eps = 1e-6
	for _, p := range params {
		for i := range p.Val.Data {
			orig := p.Val.Data[i]
			p.Val.Data[i] = orig + eps
			up := forward()
			p.Val.Data[i] = orig - eps
			down := forward()
			p.Val.Data[i] = orig
			numeric := (up - down) / (2 * eps)
			analytic := p.Grad.Data[i]
			if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("%s[%d]: analytic %v vs numeric %v", p.Name, i, analytic, numeric)
			}
		}
	}
}
