package nn

import (
	"math"
	"math/rand"
	"testing"
)

// TestConvert32RoundTripBounds checks the conversion-at-load step against the
// float32 error model DESIGN.md §1.4 relies on: each element is rounded once,
// so reading it back as float64 must land within half a float32 ulp of the
// master — a relative error of at most 2^-24 — and values float32 represents
// exactly (small integers, powers of two) must survive bit-for-bit.
func TestConvert32RoundTripBounds(t *testing.T) {
	const relBound = 1.0 / (1 << 24) // half-ulp: round-to-nearest-even

	rng := rand.New(rand.NewSource(42))
	src := NewMat(13, 17)
	for i := range src.Data {
		// Weight-like magnitudes: signed, spanning ~1e-6 .. ~1e2.
		src.Data[i] = (rng.Float64()*2 - 1) * math.Pow(10, float64(rng.Intn(9)-6))
	}
	got := Convert32(src)
	if got.Rows != src.Rows || got.Cols != src.Cols {
		t.Fatalf("Convert32 shape %dx%d, want %dx%d", got.Rows, got.Cols, src.Rows, src.Cols)
	}
	for i, v := range src.Data {
		back := float64(got.Data[i])
		if d := math.Abs(back - v); d > relBound*math.Abs(v) {
			t.Fatalf("element %d: %v -> float32 %v (|Δ| = %g > %g relative)",
				i, v, back, d, relBound)
		}
	}

	// Exactly representable values must convert losslessly, including signed
	// zero and the largest odd integer float32 holds exactly (2^24 - 1).
	exact := NewMat(1, 8)
	exact.Data = []float64{0, math.Copysign(0, -1), 1, -1, 0.5, -0.375, 1 << 20, (1 << 24) - 1}
	for i, v := range Convert32(exact).Data {
		if float64(v) != exact.Data[i] || math.Signbit(float64(v)) != math.Signbit(exact.Data[i]) {
			t.Fatalf("exact value %v converted to %v", exact.Data[i], v)
		}
	}

	// Convert32 must snapshot, not alias: mutating the master afterwards (as
	// training does) cannot leak into serving weights.
	src.Data[0] = 1e9
	if got.Data[0] == 1e9 {
		t.Fatal("Convert32 aliases its source; serving weights must be a snapshot")
	}
}
