package sampler_test

import (
	"math"
	"math/rand"
	"testing"

	"neurocard/internal/exec"
	"neurocard/internal/sampler"
	"neurocard/internal/schema"
	"neurocard/internal/table"
	"neurocard/internal/testutil"
	"neurocard/internal/value"
)

// figure4Schema reproduces the paper's Figure 4: A(x)=[1,2],
// B(x,y)=[(1,a),(2,b),(2,c)], C(y)=[c,c,d], edges A.x=B.x and B.y=C.y.
// Join keys must be ints, so a→1, b→2, c→3, d→4.
func figure4Schema(t *testing.T) *schema.Schema {
	t.Helper()
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	a.MustAppend(value.Int(1))
	a.MustAppend(value.Int(2))

	b := table.MustBuilder("B", []table.ColSpec{
		{Name: "x", Kind: value.KindInt}, {Name: "y", Kind: value.KindInt},
	})
	b.MustAppend(value.Int(1), value.Int(1))
	b.MustAppend(value.Int(2), value.Int(2))
	b.MustAppend(value.Int(2), value.Int(3))

	c := table.MustBuilder("C", []table.ColSpec{{Name: "y", Kind: value.KindInt}})
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(3))
	c.MustAppend(value.Int(4))

	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild(), c.MustBuild()},
		"A",
		[]schema.Edge{
			{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"},
			{LeftTable: "B", LeftCol: "y", RightTable: "C", RightCol: "y"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure4JoinCounts checks the worked example from §4.1: join counts
// A.x=1→1, A.x=2→3, B.(2,c)→2, and |J| = 5 (4 root-reachable + 1 orphan).
func TestFigure4JoinCounts(t *testing.T) {
	s := figure4Schema(t)
	smp, err := sampler.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if got := smp.JoinSize(); got != 5 {
		t.Errorf("|J| = %v, want 5", got)
	}
	wantA := []float64{1, 3}
	for row, want := range wantA {
		if got := smp.Weight("A", row); got != want {
			t.Errorf("w_A(row %d) = %v, want %v", row, got, want)
		}
	}
	wantB := []float64{1, 1, 2}
	for row, want := range wantB {
		if got := smp.Weight("B", row); got != want {
			t.Errorf("w_B(row %d) = %v, want %v", row, got, want)
		}
	}
	for row := 0; row < 3; row++ {
		if got := smp.Weight("C", row); got != 1 {
			t.Errorf("w_C(row %d) = %v, want 1", row, got)
		}
	}
}

// TestFigure4FullJoinRows checks that brute-force materialization produces
// exactly the five rows of Figure 4c.
func TestFigure4FullJoinRows(t *testing.T) {
	s := figure4Schema(t)
	rows, err := exec.BruteForceFullJoin(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("brute force |J| = %d, want 5: %v", len(rows), rows)
	}
	want := map[string]int{
		"[0 0 -1]":  1, // A=1, B=(1,a), C=NULL
		"[1 1 -1]":  1, // A=2, B=(2,b), C=NULL
		"[1 2 0]":   1, // A=2, B=(2,c), C=c
		"[1 2 1]":   1, // A=2, B=(2,c), C=c (second c)
		"[-1 -1 2]": 1, // orphan: C=d
	}
	got := map[string]int{}
	for _, r := range rows {
		got[testutil.RowKey(r)]++
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("row %s: count %d, want %d (all: %v)", k, got[k], n, got)
		}
	}
}

// TestDPSizeMatchesBruteForce is the core §4 property: the DP's |J| equals
// brute-force full-outer-join materialization on random schemas.
func TestDPSizeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := testutil.DefaultSchemaConfig()
	for iter := 0; iter < 120; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		smp, err := sampler.New(s)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		rows, err := exec.BruteForceFullJoin(s)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := smp.JoinSize(), float64(len(rows)); got != want {
			t.Fatalf("iter %d: DP |J| = %v, brute force = %v (schema tables %v)",
				iter, got, want, s.Tables())
		}
	}
}

// TestSamplerUniform draws many samples from a small random schema and
// checks every full-join row appears with probability 1/|J| (chi-square).
func TestSamplerUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 5; iter++ {
		s := testutil.RandomSchema(rng, testutil.RandomSchemaConfig{
			MaxTables: 3, MaxRows: 4, KeyDomain: 3, NullProb: 0.2, ExtraCols: 1, ValDomain: 3,
		})
		smp, err := sampler.New(s)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.BruteForceFullJoin(s)
		if err != nil {
			t.Fatal(err)
		}
		idx := map[string]int{}
		for _, r := range rows {
			if _, ok := idx[testutil.RowKey(r)]; !ok {
				idx[testutil.RowKey(r)] = len(idx)
			}
		}
		probs := make([]float64, len(idx))
		for _, r := range rows {
			probs[idx[testutil.RowKey(r)]] += 1 / float64(len(rows))
		}
		const n = 40000
		counts := make([]int, len(idx))
		out := make([]int32, len(s.Tables()))
		for i := 0; i < n; i++ {
			smp.Sample(rng, out)
			j, ok := idx[testutil.RowKey(out)]
			if !ok {
				t.Fatalf("sampled row %v not in full join", out)
			}
			counts[j]++
		}
		if chi, ok := testutil.ChiSquareUniform(counts, probs, n); !ok {
			t.Errorf("iter %d: chi-square %v too large for %d categories", iter, chi, len(idx))
		}
	}
}

// TestSampleParallel checks the parallel path produces only valid rows and
// is deterministic for a fixed seed.
func TestSampleParallel(t *testing.T) {
	s := figure4Schema(t)
	smp, err := sampler.New(s)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.BruteForceFullJoin(s)
	if err != nil {
		t.Fatal(err)
	}
	valid := map[string]bool{}
	for _, r := range rows {
		valid[testutil.RowKey(r)] = true
	}
	got1 := smp.SampleParallel(123, 4, 1000)
	got2 := smp.SampleParallel(123, 4, 1000)
	if len(got1) != 1000 {
		t.Fatalf("len = %d", len(got1))
	}
	for i := range got1 {
		if !valid[testutil.RowKey(got1[i])] {
			t.Fatalf("invalid sampled row %v", got1[i])
		}
		if testutil.RowKey(got1[i]) != testutil.RowKey(got2[i]) {
			t.Fatal("SampleParallel not deterministic for fixed seed")
		}
	}
}

// TestInnerCountMatchesBruteForce: inner-join DP equals the count of
// brute-force full-join rows with no NULL tables.
func TestInnerCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := testutil.DefaultSchemaConfig()
	for iter := 0; iter < 100; iter++ {
		s := testutil.RandomSchema(rng, cfg)
		in, err := sampler.NewInner(s, nil)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.BruteForceFullJoin(s)
		if err != nil {
			t.Fatal(err)
		}
		want := 0.0
		for _, r := range rows {
			all := true
			for _, x := range r {
				if x == sampler.NullRow {
					all = false
					break
				}
			}
			if all {
				want++
			}
		}
		if got := in.Count(); got != want {
			t.Fatalf("iter %d: inner count = %v, want %v", iter, got, want)
		}
	}
}

// TestInnerSampleUniform: inner-join samples are uniform over inner rows.
func TestInnerSampleUniform(t *testing.T) {
	s := figure4Schema(t)
	in, err := sampler.NewInner(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Inner join rows: A=2,B=(2,c),C ∈ {row0,row1} → 2 rows.
	if in.Count() != 2 {
		t.Fatalf("inner count = %v, want 2", in.Count())
	}
	rng := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	out := make([]int32, 3)
	const n = 20000
	for i := 0; i < n; i++ {
		if !in.Sample(rng, out) {
			t.Fatal("Sample returned false on non-empty join")
		}
		counts[testutil.RowKey(out)]++
	}
	if len(counts) != 2 {
		t.Fatalf("distinct inner samples = %v", counts)
	}
	for k, c := range counts {
		if math.Abs(float64(c)/n-0.5) > 0.02 {
			t.Errorf("row %s frequency %v, want ≈0.5", k, float64(c)/n)
		}
	}
}

// TestInnerWithFilter: filters zero out rows before counting.
func TestInnerWithFilter(t *testing.T) {
	s := figure4Schema(t)
	// Keep only C rows with y=4 ("d"): no inner join rows survive.
	filter := func(tbl string, row int) bool {
		if tbl != "C" {
			return true
		}
		v, _ := s.Table("C").MustCol("y").Int(row)
		return v == 4
	}
	in, err := sampler.NewInner(s, filter)
	if err != nil {
		t.Fatal(err)
	}
	if in.Count() != 0 {
		t.Errorf("filtered inner count = %v, want 0", in.Count())
	}
	out := make([]int32, 3)
	if in.Sample(rand.New(rand.NewSource(1)), out) {
		t.Error("Sample succeeded on empty join")
	}
}

// TestEmptySchemaJoin: a schema whose full join is empty must be rejected.
func TestEmptySchemaJoin(t *testing.T) {
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	b := table.MustBuilder("B", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild()}, "A",
		[]schema.Edge{{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sampler.New(s); err == nil {
		t.Error("sampler accepted empty full join")
	}
}

// TestOrphanOnlyJoin: root empty but a child has rows → all rows are
// orphans and sampling still works.
func TestOrphanOnlyJoin(t *testing.T) {
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	b := table.MustBuilder("B", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	b.MustAppend(value.Int(1))
	b.MustAppend(value.Int(2))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild()}, "A",
		[]schema.Edge{{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := sampler.New(s)
	if err != nil {
		t.Fatal(err)
	}
	if smp.JoinSize() != 2 {
		t.Fatalf("|J| = %v, want 2", smp.JoinSize())
	}
	rng := rand.New(rand.NewSource(5))
	out := make([]int32, 2)
	for i := 0; i < 100; i++ {
		smp.Sample(rng, out)
		if out[0] != sampler.NullRow || out[1] == sampler.NullRow {
			t.Fatalf("sample = %v, want A NULL and B present", out)
		}
	}
}

// TestNullKeysNeverJoin: rows with NULL join keys appear only as orphans.
func TestNullKeysNeverJoin(t *testing.T) {
	a := table.MustBuilder("A", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	a.MustAppend(value.Null)
	a.MustAppend(value.Int(1))
	b := table.MustBuilder("B", []table.ColSpec{{Name: "x", Kind: value.KindInt}})
	b.MustAppend(value.Null)
	b.MustAppend(value.Int(1))
	s, err := schema.New(
		[]*table.Table{a.MustBuild(), b.MustBuild()}, "A",
		[]schema.Edge{{LeftTable: "A", LeftCol: "x", RightTable: "B", RightCol: "x"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := sampler.New(s)
	if err != nil {
		t.Fatal(err)
	}
	// Rows: (A null-key, B NULL), (A=1, B=1), orphan (B null-key) → 3.
	if smp.JoinSize() != 3 {
		t.Errorf("|J| = %v, want 3", smp.JoinSize())
	}
	rows, err := exec.BruteForceFullJoin(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Errorf("brute force = %d rows, want 3", len(rows))
	}
}

// TestSampleBatchInto pins the reuse path to SampleBatch: the same rng seed
// must produce identical rows whether the batch is freshly allocated or
// written into caller-provided buffers.
func TestSampleBatchInto(t *testing.T) {
	s, err := sampler.New(figure4Schema(t))
	if err != nil {
		t.Fatal(err)
	}
	nt := len(s.Tables())
	want := s.SampleBatch(rand.New(rand.NewSource(5)), 64)
	got := make([][]int32, 64)
	backing := make([]int32, 64*nt)
	for i := range got {
		got[i] = backing[i*nt : (i+1)*nt]
		for j := range got[i] {
			got[i][j] = 99 // stale garbage that Sample must overwrite
		}
	}
	s.SampleBatchInto(rand.New(rand.NewSource(5)), got)
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("row %d col %d: %d vs %d", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestNewFromWeights: a sampler restored from another sampler's join-count
// vectors (the checkpoint path) must report a bit-identical join size and
// draw bit-identical sample streams under the same RNG seed.
func TestNewFromWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		sch := testutil.RandomSchema(rng, testutil.DefaultSchemaConfig())
		orig, err := sampler.New(sch)
		if err != nil {
			t.Fatal(err)
		}
		restored, err := sampler.NewFromWeights(sch, orig.Weights())
		if err != nil {
			t.Fatal(err)
		}
		if restored.JoinSize() != orig.JoinSize() {
			t.Fatalf("trial %d: restored join size %.17g, want %.17g",
				trial, restored.JoinSize(), orig.JoinSize())
		}
		nt := len(orig.Tables())
		a, b := make([]int32, nt), make([]int32, nt)
		rngA := rand.New(rand.NewSource(int64(trial)))
		rngB := rand.New(rand.NewSource(int64(trial)))
		for i := 0; i < 200; i++ {
			orig.Sample(rngA, a)
			restored.Sample(rngB, b)
			if testutil.RowKey(a) != testutil.RowKey(b) {
				t.Fatalf("trial %d sample %d: restored drew %v, original %v", trial, i, b, a)
			}
		}
	}
}

// TestNewFromWeightsValidation: malformed join-count maps must be rejected.
func TestNewFromWeightsValidation(t *testing.T) {
	sch := figure4Schema(t)
	orig, err := sampler.New(sch)
	if err != nil {
		t.Fatal(err)
	}
	missing := orig.Weights()
	delete(missing, "B")
	if _, err := sampler.NewFromWeights(sch, missing); err == nil {
		t.Error("missing table accepted")
	}
	short := orig.Weights()
	short["C"] = short["C"][:1]
	if _, err := sampler.NewFromWeights(sch, short); err == nil {
		t.Error("short weight vector accepted")
	}
	neg := orig.Weights()
	neg["A"][0] = -1
	if _, err := sampler.NewFromWeights(sch, neg); err == nil {
		t.Error("negative join count accepted")
	}
}

// BenchmarkSamplerThroughput measures full-outer-join sampling through the
// zero-alloc SampleBatchInto reuse path feeding the training batch ring.
func BenchmarkSamplerThroughput(b *testing.B) {
	cfg := testutil.DefaultSchemaConfig()
	cfg.MaxRows = 2000
	cfg.KeyDomain = 200
	sch := testutil.RandomSchema(rand.New(rand.NewSource(2)), cfg)
	s, err := sampler.New(sch)
	if err != nil {
		b.Fatal(err)
	}
	nt := len(s.Tables())
	out := make([][]int32, 256)
	backing := make([]int32, len(out)*nt)
	for i := range out {
		out[i] = backing[i*nt : (i+1)*nt]
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleBatchInto(rng, out)
	}
	b.ReportMetric(float64(b.N*len(out))/b.Elapsed().Seconds(), "tuples/sec")
}
