// Package sampler implements the paper's §4: Exact-Weight join-count
// computation by bottom-up dynamic programming, and uniform i.i.d. sampling
// from the full outer join of a tree schema without materializing it.
//
// Full-outer-join semantics for a tree schema: every result row corresponds
// to a connected subtree assignment — the set of non-NULL tables is a
// connected subtree whose top element either is the schema root or has no
// join partner in its parent table ("orphan" rows, the paper's virtual ⊥
// tuples); within the subtree, a child is non-NULL iff the parent tuple has
// matches in it. This yields the linear-time DP
//
//	w_T(t) = Π_{c ∈ children(T)} ( S_c(key) if S_c(key) > 0 else 1 )
//	|J|    = Σ_{t ∈ root} w_root(t) + Σ_{edges (P,C)} Σ_{t ∈ C unmatched in P} w_C(t)
//
// where S_c(v) sums w_c over child tuples with join-key value v. The same DP
// with "0 instead of 1" and no orphan term computes inner-join counts, which
// the exact executor (internal/exec) uses for ground truth.
//
// Training-time sampling draws root tuples proportionally to their DP
// weights and descends the join tree, writing rows directly into caller-
// owned batch buffers (SampleBatchInto) so the training loop's sampler
// workers allocate nothing in steady state. Batch content is a pure
// function of (seed, batch index), which is what makes training
// reproducible across worker counts (DESIGN.md §1.2).
package sampler
