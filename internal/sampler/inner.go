package sampler

import (
	"math/rand"

	"neurocard/internal/schema"
)

// Inner counts and samples the *inner* join of a (sub-)schema, optionally
// restricted by per-row filters. The same Exact-Weight DP runs with "missing
// match ⇒ zero weight" and no orphan rows.
//
// Inner joins serve three roles in the system: the exact executor computes
// ground-truth cardinalities (filtered counts), the workload generators draw
// literal tuples from query join graphs (the paper's JOB-light-ranges
// recipe), and the sample-only ablation estimates cardinalities from hits.
type Inner struct {
	sch  *schema.Schema
	d    *dp
	walk *walker
}

// NewInner prepares inner-join counts for the schema, with rows failing the
// (optional) filter excluded. Typically called on a schema.SubSchema built
// from a query's join graph.
func NewInner(sch *schema.Schema, filter FilterFunc) (*Inner, error) {
	d, err := computeDP(sch, filter, false)
	if err != nil {
		return nil, err
	}
	return &Inner{sch: sch, d: d, walk: newWalker(sch, d)}, nil
}

// Count returns the exact row count of the (filtered) inner join.
func (in *Inner) Count() float64 { return in.d.rootTotal }

// Tables returns the table order used by Sample.
func (in *Inner) Tables() []string { return in.walk.order }

// Sample draws one uniform row from the inner join into out (one base-table
// row index per table; never NullRow). It reports false when the join is
// empty.
func (in *Inner) Sample(rng *rand.Rand, out []int32) bool {
	if in.d.rootTotal <= 0 {
		return false
	}
	u := rng.Float64() * in.d.rootTotal
	row := int32(searchCum(in.d.rootCum, u))
	in.walk.descend(rng, 0, row, out)
	return true
}
