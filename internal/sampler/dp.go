package sampler

import (
	"fmt"

	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// FilterFunc restricts DP weights to rows passing a predicate (inner-join
// counting with filters). A nil FilterFunc accepts every row.
type FilterFunc func(tbl string, row int) bool

// keyGroup holds the rows of a child table sharing one join-key value, with
// prefix-summed weights for O(log n) weighted sampling within the group.
type keyGroup struct {
	rows []int32
	cum  []float64 // cum[i] = Σ w over rows[0..i]; cum[len-1] == total
}

func (g keyGroup) total() float64 {
	if len(g.cum) == 0 {
		return 0
	}
	return g.cum[len(g.cum)-1]
}

// dp holds the join-count state for one schema (or sub-schema).
type dp struct {
	sch   *schema.Schema
	outer bool

	w map[string][]float64 // per table, per row: join count w_T(t)

	// groups[child][v] groups the child's rows by join-key value v with
	// cumulative weights; zero-total groups are dropped.
	groups map[string]map[int64]keyGroup

	rootCum   []float64 // prefix sums of root weights (built when sampling)
	rootTotal float64

	orphans     []orphanGroup // outer joins only
	orphanTotal float64
}

// orphanGroup collects the rows of one child table that have no join partner
// in their parent (NULL or unmatched key). Sampling one of them produces a
// full-join row where everything outside the child's subtree is NULL.
type orphanGroup struct {
	child string
	rows  []int32
	cum   []float64
	total float64
}

// computeDP runs the bottom-up Exact Weight pass. With outer=true it
// implements full-outer-join counts including orphan groups; with
// outer=false it computes inner-join counts (a missing match zeroes the
// weight). filter, if non-nil, zeroes rows failing per-table predicates
// (only meaningful for inner joins; the full-join distribution is never
// filtered).
func computeDP(sch *schema.Schema, filter FilterFunc, outer bool) (*dp, error) {
	d := &dp{
		sch:    sch,
		outer:  outer,
		w:      make(map[string][]float64, sch.NumTables()),
		groups: make(map[string]map[int64]keyGroup),
	}
	order := sch.Tables()
	// Reverse BFS order visits every child before its parent.
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		t := sch.Table(name)
		w := make([]float64, t.NumRows())

		// Parent-side key columns for each child edge, resolved once.
		children := sch.Children(name)
		pcols := make([]*table.Column, len(children))
		for j, child := range children {
			pe, _ := sch.Parent(child)
			pcols[j] = t.MustCol(pe.ParentCol)
		}

		for row := range w {
			if filter != nil && !filter(name, row) {
				continue // weight stays 0
			}
			acc := 1.0
			for j, child := range children {
				v, notNull := pcols[j].Int(row)
				var s float64
				if notNull {
					s = d.groups[child][v].total()
				}
				if s > 0 {
					acc *= s
				} else if !outer {
					acc = 0
					break
				}
				// outer join: missing child contributes one NULL row (factor 1)
			}
			w[row] = acc
		}
		d.w[name] = w

		if err := d.buildGroups(name); err != nil {
			return nil, err
		}
	}

	d.buildRootCum()
	if outer {
		if err := d.buildOrphans(filter); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// buildGroups indexes one non-root table's rows by join-key value with
// cumulative weights over d.w[name] (no-op for the root). Shared between the
// DP pass and checkpoint restore.
func (d *dp) buildGroups(name string) error {
	pe, hasParent := d.sch.Parent(name)
	if !hasParent {
		return nil
	}
	t := d.sch.Table(name)
	w := d.w[name]
	ix, err := t.Index(pe.ChildCol)
	if err != nil {
		return fmt.Errorf("sampler: %w", err)
	}
	groups := make(map[int64]keyGroup, ix.NumKeys())
	ix.Keys(func(v int64, rows []int32) {
		cum := make([]float64, len(rows))
		total := 0.0
		for k, r := range rows {
			total += w[r]
			cum[k] = total
		}
		if total > 0 {
			groups[v] = keyGroup{rows: rows, cum: cum}
		}
	})
	d.groups[name] = groups
	return nil
}

// buildRootCum prefix-sums the root table's weights.
func (d *dp) buildRootCum() {
	rw := d.w[d.sch.Root()]
	d.rootCum = make([]float64, len(rw))
	total := 0.0
	for i, x := range rw {
		total += x
		d.rootCum[i] = total
	}
	d.rootTotal = total
}

// restoreDP rebuilds the full-outer-join sampling structures (key groups,
// root prefix sums, orphan groups) from previously computed per-table join
// counts, skipping the bottom-up weight pass entirely. The accumulation
// order matches computeDP exactly, so every derived total — including the
// join size — is bit-identical to the original run's.
func restoreDP(sch *schema.Schema, w map[string][]float64) (*dp, error) {
	d := &dp{
		sch:    sch,
		outer:  true,
		w:      w,
		groups: make(map[string]map[int64]keyGroup),
	}
	for _, name := range sch.Tables() {
		weights, ok := w[name]
		if !ok {
			return nil, fmt.Errorf("sampler: restore: no join counts for table %q", name)
		}
		if len(weights) != sch.Table(name).NumRows() {
			return nil, fmt.Errorf("sampler: restore: table %q has %d rows but %d join counts",
				name, sch.Table(name).NumRows(), len(weights))
		}
		for row, x := range weights {
			if x < 0 {
				return nil, fmt.Errorf("sampler: restore: table %q row %d has negative join count %g", name, row, x)
			}
		}
	}
	// Reverse BFS order, matching computeDP's visit order.
	order := sch.Tables()
	for i := len(order) - 1; i >= 0; i-- {
		if err := d.buildGroups(order[i]); err != nil {
			return nil, err
		}
	}
	d.buildRootCum()
	if err := d.buildOrphans(nil); err != nil {
		return nil, err
	}
	return d, nil
}

// buildOrphans collects, per tree edge (P, C), the rows of C with no join
// partner in P (NULL key or a key value absent from P's key column). These
// are the paper's ⊥-extended rows: they appear in the full join with every
// table outside C's subtree NULL.
func (d *dp) buildOrphans(filter FilterFunc) error {
	for _, name := range d.sch.Tables() {
		pe, hasParent := d.sch.Parent(name)
		if !hasParent {
			continue
		}
		parentTbl := d.sch.Table(pe.Parent)
		pix, err := parentTbl.Index(pe.ParentCol)
		if err != nil {
			return fmt.Errorf("sampler: %w", err)
		}
		t := d.sch.Table(name)
		kcol := t.MustCol(pe.ChildCol)
		w := d.w[name]
		var g orphanGroup
		g.child = name
		for row := 0; row < t.NumRows(); row++ {
			if w[row] == 0 {
				continue
			}
			if filter != nil && !filter(name, row) {
				continue
			}
			v, notNull := kcol.Int(row)
			if notNull && pix.Has(v) {
				continue // has a partner; reached through the parent
			}
			g.total += w[row]
			g.rows = append(g.rows, int32(row))
			g.cum = append(g.cum, g.total)
		}
		if g.total > 0 {
			d.orphans = append(d.orphans, g)
			d.orphanTotal += g.total
		}
	}
	return nil
}

// joinSize returns the total number of rows in the (full-outer or inner)
// join the DP was computed for.
func (d *dp) joinSize() float64 { return d.rootTotal + d.orphanTotal }
