package sampler

import (
	"fmt"

	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// FilterFunc restricts DP weights to rows passing a predicate (inner-join
// counting with filters). A nil FilterFunc accepts every row.
type FilterFunc func(tbl string, row int) bool

// keyGroup holds the rows of a child table sharing one join-key value, with
// prefix-summed weights for O(log n) weighted sampling within the group.
type keyGroup struct {
	rows []int32
	cum  []float64 // cum[i] = Σ w over rows[0..i]; cum[len-1] == total
}

func (g keyGroup) total() float64 {
	if len(g.cum) == 0 {
		return 0
	}
	return g.cum[len(g.cum)-1]
}

// dp holds the join-count state for one schema (or sub-schema).
type dp struct {
	sch   *schema.Schema
	outer bool

	w map[string][]float64 // per table, per row: join count w_T(t)

	// groups[child][v] groups the child's rows by join-key value v with
	// cumulative weights; zero-total groups are dropped.
	groups map[string]map[int64]keyGroup

	rootCum   []float64 // prefix sums of root weights (built when sampling)
	rootTotal float64

	orphans     []orphanGroup // outer joins only
	orphanTotal float64
}

// orphanGroup collects the rows of one child table that have no join partner
// in their parent (NULL or unmatched key). Sampling one of them produces a
// full-join row where everything outside the child's subtree is NULL.
type orphanGroup struct {
	child string
	rows  []int32
	cum   []float64
	total float64
}

// computeDP runs the bottom-up Exact Weight pass. With outer=true it
// implements full-outer-join counts including orphan groups; with
// outer=false it computes inner-join counts (a missing match zeroes the
// weight). filter, if non-nil, zeroes rows failing per-table predicates
// (only meaningful for inner joins; the full-join distribution is never
// filtered).
func computeDP(sch *schema.Schema, filter FilterFunc, outer bool) (*dp, error) {
	d := &dp{
		sch:    sch,
		outer:  outer,
		w:      make(map[string][]float64, sch.NumTables()),
		groups: make(map[string]map[int64]keyGroup),
	}
	order := sch.Tables()
	// Reverse BFS order visits every child before its parent.
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		t := sch.Table(name)
		w := make([]float64, t.NumRows())

		// Parent-side key columns for each child edge, resolved once.
		children := sch.Children(name)
		pcols := make([]*table.Column, len(children))
		for j, child := range children {
			pe, _ := sch.Parent(child)
			pcols[j] = t.MustCol(pe.ParentCol)
		}

		for row := range w {
			if filter != nil && !filter(name, row) {
				continue // weight stays 0
			}
			acc := 1.0
			for j, child := range children {
				v, notNull := pcols[j].Int(row)
				var s float64
				if notNull {
					s = d.groups[child][v].total()
				}
				if s > 0 {
					acc *= s
				} else if !outer {
					acc = 0
					break
				}
				// outer join: missing child contributes one NULL row (factor 1)
			}
			w[row] = acc
		}
		d.w[name] = w

		if err := d.buildGroups(name); err != nil {
			return nil, err
		}
	}

	d.buildRootCum()
	if outer {
		if err := d.buildOrphans(filter); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// buildGroups indexes one non-root table's rows by join-key value with
// cumulative weights over d.w[name] (no-op for the root). Shared between the
// DP pass and checkpoint restore.
func (d *dp) buildGroups(name string) error {
	pe, hasParent := d.sch.Parent(name)
	if !hasParent {
		return nil
	}
	t := d.sch.Table(name)
	w := d.w[name]
	ix, err := t.Index(pe.ChildCol)
	if err != nil {
		return fmt.Errorf("sampler: %w", err)
	}
	groups := make(map[int64]keyGroup, ix.NumKeys())
	ix.Keys(func(v int64, rows []int32) {
		cum := make([]float64, len(rows))
		total := 0.0
		for k, r := range rows {
			total += w[r]
			cum[k] = total
		}
		if total > 0 {
			groups[v] = keyGroup{rows: rows, cum: cum}
		}
	})
	d.groups[name] = groups
	return nil
}

// buildRootCum prefix-sums the root table's weights.
func (d *dp) buildRootCum() {
	rw := d.w[d.sch.Root()]
	d.rootCum = make([]float64, len(rw))
	total := 0.0
	for i, x := range rw {
		total += x
		d.rootCum[i] = total
	}
	d.rootTotal = total
}

// computeDPAppend incrementally extends old's join-count state to a schema
// whose tables append rows to old's tables (same dictionaries, old rows as a
// prefix — the contract Table.AppendRows establishes). Only appended rows and
// the rows transitively affected by them are recomputed: an appended child
// row changes its join key's group total, which dirties exactly the parent
// rows holding that key, and so on up the tree. Dirty rows are recomputed
// with computeDP's own per-row product (not scaled by ratios), and affected
// key groups are rebuilt over the same index iteration order, so the result
// is bit-identical to a full computeDP over the new schema — the property
// TestNewAppendedMatchesFullRecompute locks in.
func computeDPAppend(old *dp, sch *schema.Schema) (*dp, error) {
	d := &dp{
		sch:    sch,
		outer:  old.outer,
		w:      make(map[string][]float64, sch.NumTables()),
		groups: make(map[string]map[int64]keyGroup),
	}
	// changed[table] = join-key values (of the table's child column) whose
	// group totals may differ from old's, discovered as tables are processed.
	changed := make(map[string]map[int64]bool)
	order := sch.Tables()
	for i := len(order) - 1; i >= 0; i-- {
		name := order[i]
		t := sch.Table(name)
		oldT := old.sch.Table(name)
		if oldT == nil {
			return nil, fmt.Errorf("sampler: append: table %q not in the previous schema", name)
		}
		oldN := oldT.NumRows()
		if t.NumRows() < oldN {
			return nil, fmt.Errorf("sampler: append: table %q shrank from %d to %d rows", name, oldN, t.NumRows())
		}
		w := make([]float64, t.NumRows())
		copy(w, old.w[name])

		children := sch.Children(name)
		pcols := make([]*table.Column, len(children))
		for j, child := range children {
			pe, _ := sch.Parent(child)
			pcols[j] = t.MustCol(pe.ParentCol)
		}
		recompute := func(row int) {
			acc := 1.0
			for j, child := range children {
				v, notNull := pcols[j].Int(row)
				var s float64
				if notNull {
					s = d.groups[child][v].total()
				}
				if s > 0 {
					acc *= s
				} else if !d.outer {
					acc = 0
					break
				}
			}
			w[row] = acc
		}
		// Existing rows referencing a changed child key group.
		dirty := make(map[int32]bool)
		for _, child := range children {
			keys := changed[child]
			if len(keys) == 0 {
				continue
			}
			pe, _ := sch.Parent(child)
			ix, err := t.Index(pe.ParentCol)
			if err != nil {
				return nil, fmt.Errorf("sampler: %w", err)
			}
			for v := range keys {
				for _, r := range ix.Rows(v) {
					if int(r) < oldN {
						dirty[r] = true
					}
				}
			}
		}
		for r := range dirty {
			recompute(int(r))
		}
		for row := oldN; row < t.NumRows(); row++ {
			recompute(row)
		}
		d.w[name] = w

		pe, hasParent := sch.Parent(name)
		if !hasParent {
			continue
		}
		// Rebuild the key groups of affected keys only; untouched groups are
		// shared with old (old is never mutated, so sharing is safe).
		kcol := t.MustCol(pe.ChildCol)
		myChanged := make(map[int64]bool, len(dirty)+t.NumRows()-oldN)
		for r := range dirty {
			if v, ok := kcol.Int(int(r)); ok {
				myChanged[v] = true
			}
		}
		for row := oldN; row < t.NumRows(); row++ {
			if v, ok := kcol.Int(row); ok {
				myChanged[v] = true
			}
		}
		oldGroups := old.groups[name]
		groups := make(map[int64]keyGroup, len(oldGroups)+len(myChanged))
		for v, g := range oldGroups {
			groups[v] = g
		}
		if len(myChanged) > 0 {
			ix, err := t.Index(pe.ChildCol)
			if err != nil {
				return nil, fmt.Errorf("sampler: %w", err)
			}
			for v := range myChanged {
				rows := ix.Rows(v)
				cum := make([]float64, len(rows))
				total := 0.0
				for k, r := range rows {
					total += w[r]
					cum[k] = total
				}
				if total > 0 {
					groups[v] = keyGroup{rows: rows, cum: cum}
				} else {
					delete(groups, v)
				}
			}
		}
		d.groups[name] = groups
		changed[name] = myChanged
	}
	d.buildRootCum()
	if d.outer {
		// Appended parent rows can adopt previously orphaned child rows, so
		// orphan groups are rebuilt outright (linear, matching computeDP).
		if err := d.buildOrphans(nil); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// restoreDP rebuilds the full-outer-join sampling structures (key groups,
// root prefix sums, orphan groups) from previously computed per-table join
// counts, skipping the bottom-up weight pass entirely. The accumulation
// order matches computeDP exactly, so every derived total — including the
// join size — is bit-identical to the original run's.
func restoreDP(sch *schema.Schema, w map[string][]float64) (*dp, error) {
	d := &dp{
		sch:    sch,
		outer:  true,
		w:      w,
		groups: make(map[string]map[int64]keyGroup),
	}
	for _, name := range sch.Tables() {
		weights, ok := w[name]
		if !ok {
			return nil, fmt.Errorf("sampler: restore: no join counts for table %q", name)
		}
		if len(weights) != sch.Table(name).NumRows() {
			return nil, fmt.Errorf("sampler: restore: table %q has %d rows but %d join counts",
				name, sch.Table(name).NumRows(), len(weights))
		}
		for row, x := range weights {
			if x < 0 {
				return nil, fmt.Errorf("sampler: restore: table %q row %d has negative join count %g", name, row, x)
			}
		}
	}
	// Reverse BFS order, matching computeDP's visit order.
	order := sch.Tables()
	for i := len(order) - 1; i >= 0; i-- {
		if err := d.buildGroups(order[i]); err != nil {
			return nil, err
		}
	}
	d.buildRootCum()
	if err := d.buildOrphans(nil); err != nil {
		return nil, err
	}
	return d, nil
}

// buildOrphans collects, per tree edge (P, C), the rows of C with no join
// partner in P (NULL key or a key value absent from P's key column). These
// are the paper's ⊥-extended rows: they appear in the full join with every
// table outside C's subtree NULL.
func (d *dp) buildOrphans(filter FilterFunc) error {
	for _, name := range d.sch.Tables() {
		pe, hasParent := d.sch.Parent(name)
		if !hasParent {
			continue
		}
		parentTbl := d.sch.Table(pe.Parent)
		pix, err := parentTbl.Index(pe.ParentCol)
		if err != nil {
			return fmt.Errorf("sampler: %w", err)
		}
		t := d.sch.Table(name)
		kcol := t.MustCol(pe.ChildCol)
		w := d.w[name]
		var g orphanGroup
		g.child = name
		for row := 0; row < t.NumRows(); row++ {
			if w[row] == 0 {
				continue
			}
			if filter != nil && !filter(name, row) {
				continue
			}
			v, notNull := kcol.Int(row)
			if notNull && pix.Has(v) {
				continue // has a partner; reached through the parent
			}
			g.total += w[row]
			g.rows = append(g.rows, int32(row))
			g.cum = append(g.cum, g.total)
		}
		if g.total > 0 {
			d.orphans = append(d.orphans, g)
			d.orphanTotal += g.total
		}
	}
	return nil
}

// joinSize returns the total number of rows in the (full-outer or inner)
// join the DP was computed for.
func (d *dp) joinSize() float64 { return d.rootTotal + d.orphanTotal }
