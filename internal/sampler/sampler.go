package sampler

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"neurocard/internal/schema"
	"neurocard/internal/table"
)

// NullRow marks a NULL (absent) table in a sampled join row.
const NullRow int32 = -1

// Sampler draws uniform i.i.d. rows from the full outer join of a schema
// without materializing it (§4). Safe for concurrent use: each call supplies
// its own *rand.Rand.
type Sampler struct {
	sch  *schema.Schema
	d    *dp
	walk *walker

	orphanCum []float64 // cumulative totals across orphan groups
}

// walker caches the per-table metadata used by the top-down descent.
type walker struct {
	sch      *schema.Schema
	d        *dp
	order    []string
	tIdx     map[string]int
	children [][]int           // per table index: child table indices
	pcols    [][]*table.Column // per table index: parent-side key column per child
}

func newWalker(sch *schema.Schema, d *dp) *walker {
	order := sch.Tables()
	w := &walker{
		sch:      sch,
		d:        d,
		order:    order,
		tIdx:     make(map[string]int, len(order)),
		children: make([][]int, len(order)),
		pcols:    make([][]*table.Column, len(order)),
	}
	for i, name := range order {
		w.tIdx[name] = i
	}
	for i, name := range order {
		t := sch.Table(name)
		for _, child := range sch.Children(name) {
			pe, _ := sch.Parent(child)
			w.children[i] = append(w.children[i], w.tIdx[child])
			w.pcols[i] = append(w.pcols[i], t.MustCol(pe.ParentCol))
		}
	}
	return w
}

// descend fills out[] for the subtree rooted at table index ti, starting from
// the given row, sampling each child tuple proportionally to its join count.
func (w *walker) descend(rng *rand.Rand, ti int, row int32, out []int32) {
	out[ti] = row
	for j, ci := range w.children[ti] {
		v, notNull := w.pcols[ti][j].Int(int(row))
		if !notNull {
			continue
		}
		g, ok := w.d.groups[w.order[ci]][v]
		if !ok {
			continue
		}
		crow := g.rows[searchCum(g.cum, rng.Float64()*g.total())]
		w.descend(rng, ci, crow, out)
	}
}

// searchCum returns the smallest index i with cum[i] > u. u must lie in
// [0, cum[len-1]).
func searchCum(cum []float64, u float64) int {
	i := sort.SearchFloat64s(cum, u)
	// SearchFloat64s returns the first i with cum[i] >= u; when u exactly
	// equals a boundary we still want the entry owning [cum[i-1], cum[i]).
	for i < len(cum) && cum[i] <= u {
		i++
	}
	if i == len(cum) {
		i-- // guard against accumulated floating-point error at the top end
	}
	return i
}

// New prepares the join count tables for the full outer join of the schema
// (time linear in the total number of rows) and returns a ready sampler.
func New(sch *schema.Schema) (*Sampler, error) {
	d, err := computeDP(sch, nil, true)
	if err != nil {
		return nil, err
	}
	return fromDP(sch, d)
}

// NewFromWeights rebuilds a sampler from previously computed per-table join
// counts (Weights of the original sampler), skipping the bottom-up DP pass.
// This is the checkpoint-restore path: the stored counts are authoritative,
// so a restored sampler's join size and sampling distribution are
// bit-identical to the original's rather than depending on a recomputation.
func NewFromWeights(sch *schema.Schema, w map[string][]float64) (*Sampler, error) {
	d, err := restoreDP(sch, w)
	if err != nil {
		return nil, err
	}
	return fromDP(sch, d)
}

// NewAppended incrementally maintains the join-count tables for a schema
// extending old's by appended rows (same dictionaries, old rows as a prefix
// of every table — the snapshot Table.AppendRows / ingest.Apply produce).
// Cost is proportional to the appended rows and the ancestor rows whose key
// groups they touch, not the full dataset; the result — weights, groups,
// join size — is bit-identical to New over the extended schema.
func NewAppended(old *Sampler, sch *schema.Schema) (*Sampler, error) {
	d, err := computeDPAppend(old.d, sch)
	if err != nil {
		return nil, err
	}
	return fromDP(sch, d)
}

// fromDP finishes sampler construction over prepared join-count structures.
func fromDP(sch *schema.Schema, d *dp) (*Sampler, error) {
	s := &Sampler{sch: sch, d: d, walk: newWalker(sch, d)}
	total := 0.0
	for _, g := range d.orphans {
		total += g.total
		s.orphanCum = append(s.orphanCum, total)
	}
	if s.JoinSize() <= 0 {
		return nil, fmt.Errorf("sampler: full outer join of schema rooted at %q is empty", sch.Root())
	}
	return s, nil
}

// Weights returns the per-table join-count vectors w_T (aligned with table
// row order, keyed by table name) — the exact state NewFromWeights restores
// a sampler from. The returned slices are copies.
func (s *Sampler) Weights() map[string][]float64 {
	out := make(map[string][]float64, len(s.d.w))
	for name, w := range s.d.w {
		out[name] = append([]float64(nil), w...)
	}
	return out
}

// Schema returns the schema the sampler was prepared for.
func (s *Sampler) Schema() *schema.Schema { return s.sch }

// JoinSize returns |J|, the exact number of rows in the full outer join (the
// normalizing constant of §4.1).
func (s *Sampler) JoinSize() float64 { return s.d.joinSize() }

// Tables returns the table order used in sampled rows (schema BFS order).
func (s *Sampler) Tables() []string { return s.walk.order }

// TableIndex returns the position of a table within sampled rows.
func (s *Sampler) TableIndex(name string) int { return s.walk.tIdx[name] }

// Weight returns the join count w_T(t) of one base-table row; exposed for
// tests and diagnostics.
func (s *Sampler) Weight(tbl string, row int) float64 { return s.d.w[tbl][row] }

// Sample fills out (length == number of tables, in Tables() order) with one
// uniform sample from the full outer join: a base-table row index per table,
// NullRow where the table is NULL.
func (s *Sampler) Sample(rng *rand.Rand, out []int32) {
	for i := range out {
		out[i] = NullRow
	}
	u := rng.Float64() * s.JoinSize()
	if u < s.d.rootTotal || len(s.d.orphans) == 0 {
		if u >= s.d.rootTotal {
			u = s.d.rootTotal // floating-point guard
		}
		row := int32(searchCum(s.d.rootCum, u))
		s.walk.descend(rng, 0, row, out)
		return
	}
	u -= s.d.rootTotal
	gi := searchCum(s.orphanCum, u)
	g := s.d.orphans[gi]
	if gi > 0 {
		u -= s.orphanCum[gi-1]
	}
	row := g.rows[searchCum(g.cum, u)]
	s.walk.descend(rng, s.walk.tIdx[g.child], row, out)
}

// SampleBatch draws n samples sequentially with the given rng.
func (s *Sampler) SampleBatch(rng *rand.Rand, n int) [][]int32 {
	out := make([][]int32, n)
	backing := make([]int32, n*len(s.walk.order))
	nt := len(s.walk.order)
	for i := range out {
		out[i] = backing[i*nt : (i+1)*nt]
	}
	s.SampleBatchInto(rng, out)
	return out
}

// SampleBatchInto fills caller-provided rows (each len(Tables())) with
// sequential samples — the reuse path training batch rings run on, which
// allocates nothing.
func (s *Sampler) SampleBatchInto(rng *rand.Rand, out [][]int32) {
	for i := range out {
		s.Sample(rng, out[i])
	}
}

// SampleParallel draws n samples using the given number of worker
// goroutines, each with an independent deterministic RNG derived from seed.
// Sampling is embarrassingly parallel once the join counts exist (§4.1).
func (s *Sampler) SampleParallel(seed int64, workers, n int) [][]int32 {
	if workers < 1 {
		workers = 1
	}
	out := make([][]int32, n)
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(wkr)*1_000_003))
			for i := lo; i < hi; i++ {
				out[i] = make([]int32, len(s.walk.order))
				s.Sample(rng, out[i])
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	return out
}
