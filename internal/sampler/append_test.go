package sampler

import (
	"math/rand"
	"testing"

	"neurocard/internal/datagen"
	"neurocard/internal/ingest"
	"neurocard/internal/schema"
	"neurocard/internal/value"
)

// appendBatches builds an ingest batch set exercising every incremental
// path: a root append, a one-hop child append, a two-hop grandchild append
// (dimension rows whose group change must propagate through cast_info to
// title), and an orphan append (NULL join key).
func appendBatches(t *testing.T, sch *schema.Schema) []*ingest.RowBatch {
	t.Helper()
	pick := func(tbl, col string, id int32) value.Value {
		return sch.Table(tbl).MustCol(col).ValueForID(id)
	}
	b := &ingest.RowBatch{Tables: []ingest.TableRows{
		{
			// Grandchild of the root: name.id group totals change, dirtying
			// cast_info rows, whose groups dirty title rows.
			Table:   "name",
			Columns: []string{"id", "name_pcode"},
			Rows: [][]value.Value{
				{pick("name", "id", 1), value.Null},
				{pick("name", "id", 1), pick("name", "name_pcode", 1)},
				{pick("name", "id", 2), value.Null},
			},
		},
		{
			Table:   "cast_info",
			Columns: []string{"movie_id", "person_id", "role_id", "nr_order", "person_role_id"},
			Rows: [][]value.Value{
				{pick("cast_info", "movie_id", 1), pick("cast_info", "person_id", 1), pick("cast_info", "role_id", 1), value.Null, value.Null},
				{pick("cast_info", "movie_id", 2), value.Null, pick("cast_info", "role_id", 1), pick("cast_info", "nr_order", 1), value.Null},
			},
		},
		{
			// Orphan path: a NULL join key never reaches a parent group.
			Table:   "movie_keyword",
			Columns: []string{"movie_id", "keyword_id"},
			Rows: [][]value.Value{
				{value.Null, pick("movie_keyword", "keyword_id", 1)},
				{pick("movie_keyword", "movie_id", 3), pick("movie_keyword", "keyword_id", 2)},
			},
		},
		{
			// Root append: a duplicate title id extends the root prefix sums.
			Table:   "title",
			Columns: []string{"id", "kind_id", "production_year"},
			Rows: [][]value.Value{
				{pick("title", "id", 1), pick("title", "kind_id", 1), pick("title", "production_year", 1)},
			},
		},
	}}
	if err := ingest.Validate(sch, b); err != nil {
		t.Fatalf("batch invalid: %v", err)
	}
	return []*ingest.RowBatch{b}
}

// TestNewAppendedMatchesFullRecompute is the incremental-maintenance
// property test: the incrementally maintained sampler must be bit-identical
// to a full recompute over the extended schema — weights, join size, and the
// sampling distribution itself.
func TestNewAppendedMatchesFullRecompute(t *testing.T) {
	d, err := datagen.JOBM(datagen.Config{Seed: 11, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	old, err := New(d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	oldJoin := old.JoinSize()
	oldW := old.Weights()

	merged, err := ingest.Apply(d.Schema, appendBatches(t, d.Schema))
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewAppended(old, merged)
	if err != nil {
		t.Fatalf("NewAppended: %v", err)
	}
	full, err := New(merged)
	if err != nil {
		t.Fatal(err)
	}

	if inc.JoinSize() != full.JoinSize() {
		t.Fatalf("join size: incremental %v, full %v", inc.JoinSize(), full.JoinSize())
	}
	iw, fw := inc.Weights(), full.Weights()
	for name, f := range fw {
		iwt, ok := iw[name]
		if !ok || len(iwt) != len(f) {
			t.Fatalf("table %q: weight vector missing or wrong length", name)
		}
		for row, x := range f {
			if iwt[row] != x {
				t.Fatalf("table %q row %d: incremental weight %v != full %v", name, row, x, iwt[row])
			}
		}
	}
	// Same RNG stream must draw identical join rows from both samplers.
	r1 := rand.New(rand.NewSource(99))
	r2 := rand.New(rand.NewSource(99))
	o1 := make([]int32, len(inc.Tables()))
	o2 := make([]int32, len(full.Tables()))
	for i := 0; i < 500; i++ {
		inc.Sample(r1, o1)
		full.Sample(r2, o2)
		for k := range o1 {
			if o1[k] != o2[k] {
				t.Fatalf("sample %d diverges at table %s: %v vs %v", i, inc.Tables()[k], o1, o2)
			}
		}
	}

	// The old sampler must be untouched: serving continuity during refresh.
	if old.JoinSize() != oldJoin {
		t.Fatalf("old sampler join size changed: %v -> %v", oldJoin, old.JoinSize())
	}
	for name, w := range old.Weights() {
		for row, x := range w {
			if oldW[name][row] != x {
				t.Fatalf("old sampler weights mutated at %s[%d]", name, row)
			}
		}
	}
}

func TestNewAppendedRejectsNonExtension(t *testing.T) {
	d, err := datagen.JOBLight(datagen.Config{Seed: 3, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(d.Schema)
	if err != nil {
		t.Fatal(err)
	}
	// A schema whose tables shrank is not an extension.
	shrunk, err := d.Snapshots(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewAppended(s, shrunk[0]); err == nil {
		t.Fatal("shrunken snapshot accepted as an append extension")
	}
}
